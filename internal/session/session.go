// Package session implements the fabric-agnostic NVMe-oF session
// engine: one host-side core (Host) and one target-side core (Target)
// shared by every transport binding. The engine owns the machinery that
// is identical across data paths — CID allocation, pending-op tracking,
// queue-depth accounting, deadlines/retries/backoff, keep-alive,
// batch-train assembly, completion reaping, connection lifecycle, the
// KATO watchdog, bounded buffer-wait shedding, and telemetry emission —
// while the transports (internal/core, internal/tcp, internal/rdma)
// implement only the small Wire interfaces that differ per path:
// handshake contents, payload staging, capsule transmission, and the
// path-specific PDUs (R2T streaming, shared-memory notify/release,
// direct placement). See DESIGN.md §5g for the layering contract.
package session

import (
	"strings"
	"time"

	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// Shared wire constants. These live here and only here; the grep-guard
// test in dedup_test.go fails if a transport re-declares one.
const (
	// CmdFlagSHMSlot marks a command capsule whose PRP1 carries a
	// shared-memory slot index holding the write payload (the
	// in-capsule-style flow of the shared-memory flow-control
	// optimization, §4.4.2).
	CmdFlagSHMSlot = 0x01

	// PollMissCPU is the busy-poll expiry cost (syscall return + re-arm).
	PollMissCPU = 8 * time.Microsecond

	// DefaultHostNQN identifies the host when the caller sets none.
	DefaultHostNQN = "nqn.2014-08.org.nvmexpress:uuid:sim-host"

	// ConnectCID is the reserved CID of the Fabrics Connect command; it
	// never collides with I/O CIDs (queue depths are far smaller).
	ConnectCID = 0xFFFF
)

// Pending tracks one in-flight command on the host side. It embeds the
// transport-level pending record and adds the recovery state the engine
// maintains (attempts, deadline generation) plus a transport-owned Stage
// slot for per-attempt staging resources (e.g. a claimed shared-memory
// slot).
type Pending struct {
	transport.Pending
	// WNext and WEnd track chunked-write progress for conservative
	// stop-and-wait flows (one chunk per target acknowledgement).
	WNext, WEnd int
	// Attempts counts retries so far; retried commands pin the plain
	// wire data path. Gen invalidates stale deadline timers across
	// attempts and recycles.
	Attempts int
	Gen      int
	// Expired marks a deadline hit; the reactor reaps it.
	Expired bool
	// DataLost marks payload that went missing mid-transfer (revoked
	// region); the response alone cannot complete the command.
	DataLost bool
	// Stage holds transport-specific per-attempt staging state (the
	// adaptive fabric stores its claimed H2C slot here). The engine
	// clears it on recycle and asks the wire to release it on retry.
	Stage any
	// qosParkAt records when QoS admission parked this command (0 when it
	// was never parked); the reactor uses it to attribute token-wait time.
	qosParkAt sim.Time
}

// tenantSep joins the host NQN and the tenant name inside the Fabrics
// Connect hostNQN field. Identity therefore crosses the wire once per
// connection inside an already fixed-width field: with no tenant
// configured the encoded bytes are identical to an untenanted build.
const tenantSep = ",tenant="

// TenantHostNQN encodes a tenant into a host NQN for Connect data.
func TenantHostNQN(hostNQN, tenant string) string {
	if tenant == "" {
		return hostNQN
	}
	return hostNQN + tenantSep + tenant
}

// SplitTenantHostNQN recovers the bare host NQN and the tenant name from
// a Connect-data hostNQN (tenant is empty when none was encoded).
func SplitTenantHostNQN(s string) (hostNQN, tenant string) {
	if i := strings.LastIndex(s, tenantSep); i >= 0 {
		return s[:i], s[i+len(tenantSep):]
	}
	return s, ""
}

// takePending pops a recycled Pending (or allocates one) and re-arms it
// for a fresh command. The generation bump invalidates any stale
// deadline timer still holding the recycled struct.
func (h *Host) takePending(io *transport.IO, fut *sim.Future[*transport.Result]) *Pending {
	if io.Admin == 0 {
		h.tview(io).Inc(telemetry.TCtrSubmits)
	}
	if n := len(h.freePends); n > 0 {
		pend := h.freePends[n-1]
		h.freePends[n-1] = nil
		h.freePends = h.freePends[:n-1]
		gen := pend.Gen + 1
		*pend = Pending{Pending: transport.Pending{IO: io, Fut: fut}, Gen: gen}
		return pend
	}
	return &Pending{Pending: transport.Pending{IO: io, Fut: fut}}
}

// recyclePending returns a finished pending op to the freelist. Only
// fully resolved commands (future resolved, CID freed) may be recycled;
// stale timers are fenced by the generation bump in takePending.
func (h *Host) recyclePending(pend *Pending) {
	if len(h.freePends) >= cap(h.freePends) && len(h.freePends) >= 4*h.cfg.QueueDepth {
		return // bound the freelist; excess pends fall to the GC
	}
	pend.IO = nil
	pend.Fut = nil
	pend.Stage = nil
	h.freePends = append(h.freePends, pend)
}
