package session

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSharedConstantsDeclaredOnce is the dedup guard for the session
// extraction: the wire-level constants that used to be copy-pasted into
// every transport (capsule flag bits, poll-miss cost, host NQN default,
// the reserved Connect CID) must have exactly one declaration across the
// engine and the three bindings — in this package. A second declaration
// anywhere in internal/{core,tcp,rdma} means the duplication crept back.
func TestSharedConstantsDeclaredOnce(t *testing.T) {
	shared := []string{"CmdFlagSHMSlot", "PollMissCPU", "DefaultHostNQN", "ConnectCID"}
	// Case-insensitive match also catches a reintroduced unexported twin
	// (pollMissCPU, connectCID, ...) in a binding package.
	want := make(map[string]string, len(shared))
	for _, name := range shared {
		want[strings.ToLower(name)] = name
	}

	root := filepath.Join("..", "..")
	decls := map[string][]string{} // canonical name -> declaration sites
	fset := token.NewFileSet()
	for _, dir := range []string{"internal/session", "internal/core", "internal/tcp", "internal/rdma"} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") || strings.HasSuffix(ent.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(root, dir, ent.Name())
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || (gd.Tok != token.CONST && gd.Tok != token.VAR) {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, id := range vs.Names {
						if canon, hit := want[strings.ToLower(id.Name)]; hit {
							decls[canon] = append(decls[canon], dir+"/"+ent.Name())
						}
					}
				}
			}
		}
	}

	for _, name := range shared {
		sites := decls[name]
		if len(sites) != 1 {
			t.Errorf("%s declared %d times (%v), want exactly 1", name, len(sites), sites)
			continue
		}
		if !strings.HasPrefix(sites[0], "internal/session/") {
			t.Errorf("%s declared in %s, want internal/session", name, sites[0])
		}
	}
}
