package session

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"nvmeoaf/internal/mempool"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// ConnWire is what a transport binding implements per target-side
// connection. The engine owns the run loop, transmit coalescing, KATO
// watchdog, buffer-wait shedding, teardown, admin commands, and the
// conservative TCP-path write/read machinery; the wire owns the
// handshake response, read/write dispatch policy, and path-specific
// PDUs (shared-memory notify/release).
type ConnWire interface {
	// OnICReq answers the handshake (the adaptive fabric runs its
	// locality check here and advertises shared-memory geometry).
	OnICReq(req *pdu.ICReq)
	// TrType is the transport type advertised in the discovery log.
	TrType() uint8
	// PreLoop runs at the top of every run-loop iteration (the adaptive
	// fabric checks for region revocation here).
	PreLoop()
	// DispatchRead serves one read command.
	DispatchRead(cmd nvme.Command, transit time.Duration)
	// DispatchWrite serves one write command of the given payload size.
	DispatchWrite(cap *pdu.CapsuleCmd, size int, transit time.Duration)
	// HandlePDU handles transport-specific PDUs; returning false makes
	// the engine panic on the unexpected PDU.
	HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool
	// Teardown reclaims wire-owned per-connection state (the adaptive
	// fabric closes its chunked-read ack queues here).
	Teardown()
}

// TargetWire binds a transport's server to the engine: one ConnWire per
// accepted connection.
type TargetWire interface {
	NewConn(c *Conn) ConnWire
}

// TargetConfig configures the target-side session engine.
type TargetConfig struct {
	// Label prefixes daemon/worker names and panics.
	Label string
	// NQN selects the served subsystem.
	NQN string
	// ChunkSize is the data-path chunk (R2T grants, read streaming,
	// buffer accounting); BatchSize > 1 enables completion-reap
	// coalescing on transmit; BusyPoll > 0 spins the receive path.
	ChunkSize int
	BatchSize int
	BusyPoll  time.Duration
	// KATO is the keep-alive timeout: a connection silent for longer is
	// torn down and its resources reclaimed (0 disables the watchdog).
	KATO time.Duration
	// MaxBufferWaiters bounds commands parked for pool buffers; beyond
	// it the server sheds load with a retryable typed error instead of
	// queueing without bound (0 = unbounded).
	MaxBufferWaiters int
	// InterruptWakeups charges the endpoint wakeup penalty when the run
	// loop parks and traffic arrives. RDMA polling leaves it off.
	InterruptWakeups bool
	// Pool is the transport's data buffer pool (nil for transports that
	// place payloads directly, like RDMA).
	Pool *mempool.Pool
	// Telemetry receives connection, shedding, and keep-alive counters;
	// nil disables.
	Telemetry *telemetry.Sink
	// QoS is the target-side token-bucket enforcement point shared by
	// this target's connections; nil disables target-side admission.
	// Unlike the host-side gate (which parks), the target rejects
	// inadmissible commands with the retryable StatusTenantThrottled —
	// a server cannot hold client commands hostage waiting for tokens.
	QoS *qos.Shaper
	// OnCrash runs when Crash tears the target down, before connections
	// drop — the hook a write-back bdev cache uses to account its
	// unflushed dirty lines as lost.
	OnCrash func()
}

// Target is the transport-independent target connection core.
type Target struct {
	e    *sim.Engine
	tgt  *target.Target
	cfg  TargetConfig
	wire TargetWire
	tel  *telemetry.Sink

	eps     []*netsim.Endpoint
	conns   []*Conn
	crashed bool

	// liveBatch is the live completion-reap coalescing depth (atomic:
	// adjustable mid-run by the tuning controller, mirroring the host's
	// SetBatchSize).
	liveBatch atomic.Int32

	// Worker names, prebuilt so the per-command dispatch paths don't
	// concatenate strings on every I/O.
	readWorker, writeWorker, flushWorker string

	// BufferWaits counts commands that waited for pool buffers.
	BufferWaits int64
	// KAExpirations counts connections torn down by the KATO watchdog.
	KAExpirations int64
	// Shed counts commands rejected with a retryable error under pool
	// exhaustion.
	Shed int64
	// StaleMsgs counts PDUs for unknown commands (late data after a
	// client-side timeout or a teardown), dropped instead of panicking.
	StaleMsgs int64
}

// NewTarget builds the engine core for tgt.
func NewTarget(e *sim.Engine, tgt *target.Target, cfg TargetConfig, wire TargetWire) *Target {
	t := &Target{e: e, tgt: tgt, cfg: cfg, wire: wire, tel: cfg.Telemetry}
	if t.tel == nil {
		t.tel = telemetry.Disabled
	}
	t.liveBatch.Store(int32(cfg.BatchSize))
	t.readWorker = cfg.Label + "-read-worker"
	t.writeWorker = cfg.Label + "-write-worker"
	t.flushWorker = cfg.Label + "-flush-worker"
	return t
}

// Subsys exposes the served target (for wire-owned dispatch workers).
func (t *Target) Subsys() *target.Target { return t.tgt }

// NQN returns the served subsystem NQN.
func (t *Target) NQN() string { return t.cfg.NQN }

// Engine returns the simulation engine (for wire-owned workers).
func (t *Target) Engine() *sim.Engine { return t.e }

// Telemetry returns the active sink (never nil).
func (t *Target) Telemetry() *telemetry.Sink { return t.tel }

// SetBatchSize adjusts the completion-reap coalescing depth live: the
// next transmit drain merges up to n ready batches into one network
// message. Safe to call from outside the engine.
func (t *Target) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	t.liveBatch.Store(int32(n))
}

// LiveBatchSize returns the live reap-coalescing depth.
func (t *Target) LiveBatchSize() int { return int(t.liveBatch.Load()) }

// Serve starts a connection handler on ep and returns it.
func (t *Target) Serve(ep *netsim.Endpoint) *Conn {
	t.eps = append(t.eps, ep)
	return t.startConn(ep)
}

func (t *Target) startConn(ep *netsim.Endpoint) *Conn {
	conn := &Conn{
		t:        t,
		ep:       ep,
		txQ:      sim.NewQueue[*txBatch](t.e, 0),
		kick:     sim.NewSignal(t.e),
		Writes:   make(map[uint16]*WriteCtx),
		WaitsQ:   sim.NewQueue[*AllocWait](t.e, 0),
		lastSeen: t.e.Now(),
	}
	conn.wire = t.wire.NewConn(conn)
	t.conns = append(t.conns, conn)
	t.e.GoDaemon(t.cfg.Label+"-server-conn", conn.run)
	if t.cfg.KATO > 0 {
		t.e.GoDaemon(t.cfg.Label+"-kato-watchdog", conn.watchdog)
	}
	return conn
}

// Crash simulates target-process death: every connection drops with all
// in-flight state (no goodbye messages), buffers return to the pool, and
// nothing is served until Restart. Clients recover through deadlines,
// retries, and reconnect.
func (t *Target) Crash() {
	if t.crashed {
		return
	}
	t.crashed = true
	if t.cfg.OnCrash != nil {
		t.cfg.OnCrash()
	}
	for _, c := range t.conns {
		c.closed = true
		c.kick.Fire()
	}
}

// Crashed reports whether the target is down.
func (t *Target) Crashed() bool { return t.crashed }

// Restart brings a crashed target back: a fresh connection handler
// starts listening on every served endpoint.
func (t *Target) Restart() {
	if !t.crashed {
		return
	}
	t.crashed = false
	t.conns = nil
	for _, ep := range t.eps {
		t.startConn(ep)
	}
}

// txBatch is a set of PDUs to transmit as one message, with an optional
// post-send callback (used to release buffers once data is on the wire).
type txBatch struct {
	pdus  []pdu.PDU
	after func()
}

// WriteCtx tracks reassembly of one conservative-flow write command.
// Real payloads are staged directly into the reserved pool elements (the
// DPDK receive path), not a private heap buffer.
type WriteCtx struct {
	Cmd      nvme.Command
	Size     int
	Received int
	Real     bool // client payload is real bytes, not modeled
	// Staged marks real payload scattered into the pool buffers below.
	Staged   bool
	Bufs     []*mempool.Buf
	Comm     time.Duration
	CopyTime time.Duration
}

// Gather materializes the staged payload into one contiguous buffer for
// the device execute; nil when the write carried no real bytes.
func (ctx *WriteCtx) Gather() []byte {
	if !ctx.Staged {
		return nil
	}
	return mempool.Gather(ctx.Bufs, ctx.Size)
}

// AllocWait is a command parked until pool buffers free up.
type AllocWait struct {
	need  int
	since sim.Time
	run   func(bufs []*mempool.Buf)
}

// Conn is one target-side connection driven by the engine.
type Conn struct {
	t    *Target
	wire ConnWire
	ep   *netsim.Endpoint
	txQ  *sim.Queue[*txBatch]
	kick *sim.Signal
	// Writes tracks in-progress conservative-flow writes by CID.
	Writes map[uint16]*WriteCtx
	// WaitsQ holds commands waiting for buffer credits, FIFO.
	WaitsQ *sim.Queue[*AllocWait]
	// tenant is the connection's tenant, recovered from the Fabrics
	// Connect hostNQN; tview is its telemetry view (nil when untenanted).
	tenant   string
	tview    *telemetry.TenantView
	lastSeen sim.Time
	closed   bool
	// dead is set once the run loop exits: posts stop transmitting but
	// still run their cleanup callbacks so buffers return to the pool.
	dead bool
	// Expired reports a keep-alive timeout teardown.
	Expired bool
	// Completion-reap scratch (run-loop only; reused so the coalesced
	// transmit path stays allocation-free).
	txPDUs   []pdu.PDU
	txAfters []func()
}

// Target returns the owning engine core.
func (c *Conn) Target() *Target { return c.t }

// Tenant returns the connection's tenant ("" when untenanted).
func (c *Conn) Tenant() string { return c.tenant }

// qosAdmit charges one I/O command against the connection tenant's
// bucket at the target-side shaper. On refusal it posts the retryable
// typed throttle status and returns false — a server sheds rather than
// holding client commands hostage waiting for tokens.
func (c *Conn) qosAdmit(cmd nvme.Command) bool {
	sh := c.t.cfg.QoS
	if sh == nil || c.tenant == "" {
		return true
	}
	now := int64(c.t.e.Now())
	b := sh.Bucket(c.tenant, now)
	if !b.Limited() || b.TryTake(now, int64(cmd.NLB())*transport.BlockSize) {
		return true
	}
	c.tview.Inc(telemetry.TCtrThrottled)
	c.t.tel.Trace(now, telemetry.EvTenantThrottle, cmd.CID, "", c.tenant)
	c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusTenantThrottled}})
	return false
}

// Kick wakes the connection's run loop.
func (c *Conn) Kick() { c.kick.Fire() }

// Closed reports whether the connection has shut down (or is about to).
func (c *Conn) Closed() bool { return c.closed }

// NoteStale counts a PDU for an unknown command, dropped instead of
// panicking (late data after a client-side timeout or a teardown).
func (c *Conn) NoteStale() {
	c.t.StaleMsgs++
	c.t.tel.Inc(telemetry.CtrSrvStaleMsgs)
}

// watchdog enforces the keep-alive timeout: a connection with no traffic
// for KATO is torn down and its resources reclaimed.
func (c *Conn) watchdog(p *sim.Proc) {
	for !c.closed {
		p.Sleep(c.t.cfg.KATO / 2)
		if c.closed {
			return
		}
		if p.Now().Sub(c.lastSeen) > c.t.cfg.KATO {
			c.Expired = true
			c.closed = true
			c.t.KAExpirations++
			c.t.tel.Inc(telemetry.CtrSrvKATOExpiry)
			c.t.tel.Trace(int64(p.Now()), telemetry.EvKATOExpired, 0, "", "watchdog")
			c.kick.Fire()
			return
		}
	}
}

// Post enqueues an outbound batch and wakes the handler. The optional
// callback runs after the bytes are on the wire (used to release
// buffers); on a dead connection it still runs so late worker
// completions cannot leak pool buffers.
func (c *Conn) Post(after func(), pdus ...pdu.PDU) {
	if c.dead {
		if after != nil {
			after()
		}
		return
	}
	c.txQ.TryPut(&txBatch{pdus: pdus, after: after})
	c.kick.Fire()
}

// run is the connection's event loop.
func (c *Conn) run(p *sim.Proc) {
	c.ep.OnDeliver = c.kick.Fire
	for !c.closed {
		c.wire.PreLoop()
		worked := false
		for {
			msg := c.ep.TryRecv(p)
			if msg == nil {
				break
			}
			c.handle(p, msg)
			worked = true
		}
		if c.drainTx(p) {
			worked = true
		}
		// Retry commands waiting for buffers (frees may have happened).
		c.retryWaits()
		if worked {
			continue
		}
		if c.t.cfg.BusyPoll > 0 {
			if msg := c.ep.RecvPoll(p, c.t.cfg.BusyPoll); msg != nil {
				c.handle(p, msg)
				continue
			}
			p.Sleep(PollMissCPU)
		}
		c.kick.Reset()
		if c.ep.Pending() > 0 || c.txQ.Len() > 0 || c.closed {
			continue
		}
		c.kick.Wait(p)
		if c.t.cfg.InterruptWakeups && c.ep.Pending() > 0 {
			c.ep.ChargeWakeup(p)
		}
	}
	c.teardown(p, !c.t.crashed)
	// A KATO teardown leaves the endpoint live: listen again so the
	// client's automatic reconnect finds a fresh connection handler.
	if c.Expired && !c.t.crashed {
		c.t.startConn(c.ep)
	}
}

// drainTx flushes the transmit queue. With completion-reap coalescing
// enabled (BatchSize > 1) up to BatchSize ready batches merge into one
// network message — the target-side mirror of doorbell batching: one
// per-message CPU charge and one client wakeup reap a whole train of
// completions. Every merged batch's cleanup callback still runs after
// its bytes are on the wire.
func (c *Conn) drainTx(p *sim.Proc) bool {
	reap := 1
	if b := int(c.t.liveBatch.Load()); b > 1 {
		reap = b
	}
	worked := false
	for {
		batch, ok := c.txQ.TryGet()
		if !ok {
			break
		}
		worked = true
		if reap <= 1 {
			transport.SendPDUs(p, c.ep, batch.pdus...)
			c.t.tel.Add(telemetry.CtrPDUsTx, int64(len(batch.pdus)))
			if batch.after != nil {
				batch.after()
			}
			continue
		}
		pdus := append(c.txPDUs[:0], batch.pdus...)
		afters := c.txAfters[:0]
		if batch.after != nil {
			afters = append(afters, batch.after)
		}
		merged := 1
		for merged < reap {
			next, ok := c.txQ.TryGet()
			if !ok {
				break
			}
			pdus = append(pdus, next.pdus...)
			if next.after != nil {
				afters = append(afters, next.after)
			}
			merged++
		}
		transport.SendPDUs(p, c.ep, pdus...)
		c.t.tel.Add(telemetry.CtrPDUsTx, int64(len(pdus)))
		c.t.tel.Observe(telemetry.HistReapDepth, int64(merged))
		for i, fn := range afters {
			fn()
			afters[i] = nil
		}
		c.txPDUs, c.txAfters = pdus[:0], afters[:0]
	}
	return worked
}

// teardown reclaims every connection resource: queued transmissions are
// flushed (their cleanup callbacks always run; the bytes only transmit
// on a graceful close), half-received writes free their pool buffers,
// parked buffer-waiters drain, and the wire reclaims its own state —
// a KATO expiry mid-transfer must not leak pool credits the other
// connections need.
func (c *Conn) teardown(p *sim.Proc, transmit bool) {
	c.dead = true
	for {
		batch, ok := c.txQ.TryGet()
		if !ok {
			break
		}
		if transmit {
			transport.SendPDUs(p, c.ep, batch.pdus...)
			c.t.tel.Add(telemetry.CtrPDUsTx, int64(len(batch.pdus)))
		}
		if batch.after != nil {
			batch.after()
		}
	}
	for _, cid := range SortedWriteCIDs(c.Writes) {
		FreeBufs(c.Writes[cid].Bufs)
		delete(c.Writes, cid)
	}
	for {
		if _, ok := c.WaitsQ.TryGet(); !ok {
			break
		}
	}
	c.wire.Teardown()
}

// SortedWriteCIDs returns the keys of a write-reassembly map in
// deterministic order (map iteration would vary run to run).
func SortedWriteCIDs(m map[uint16]*WriteCtx) []uint16 {
	cids := make([]uint16, 0, len(m))
	for cid := range m {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	return cids
}

// retryWaits re-attempts buffer allocation for parked commands in FIFO
// order, stopping at the first that still cannot be satisfied.
func (c *Conn) retryWaits() {
	for c.WaitsQ.Len() > 0 {
		w, _ := c.WaitsQ.TryGet()
		bufs, ok := c.allocBufs(w.need)
		if !ok {
			// Put it back at the head position, preserving FIFO order.
			rest := []*AllocWait{w}
			for c.WaitsQ.Len() > 0 {
				x, _ := c.WaitsQ.TryGet()
				rest = append(rest, x)
			}
			for _, x := range rest {
				c.WaitsQ.TryPut(x)
			}
			return
		}
		c.t.tel.ObserveDuration(telemetry.HistBufWait, c.t.e.Now().Sub(w.since))
		w.run(bufs)
	}
}

// allocBufs grabs n buffers from the shared pool, all or nothing.
func (c *Conn) allocBufs(n int) ([]*mempool.Buf, bool) {
	if c.t.cfg.Pool.Available() < n {
		return nil, false
	}
	bufs := make([]*mempool.Buf, 0, n)
	for i := 0; i < n; i++ {
		b, ok := c.t.cfg.Pool.Get()
		if !ok {
			for _, prev := range bufs {
				prev.Free()
			}
			return nil, false
		}
		bufs = append(bufs, b)
	}
	return bufs, true
}

// WithBufs runs fn once n pool buffers are available. Under exhaustion
// the command parks in the wait queue (flow-control back-pressure);
// past MaxBufferWaiters the server sheds it with a retryable typed
// error instead of queueing without bound.
func (c *Conn) WithBufs(cid uint16, n int, fn func(bufs []*mempool.Buf)) {
	if bufs, ok := c.allocBufs(n); ok {
		fn(bufs)
		return
	}
	if max := c.t.cfg.MaxBufferWaiters; max > 0 && c.WaitsQ.Len() >= max {
		c.t.Shed++
		c.t.tel.Inc(telemetry.CtrSrvShed)
		c.t.tel.Trace(int64(c.t.e.Now()), telemetry.EvShed, cid, "", "pool-exhausted")
		if c.tenant != "" {
			// A shed buffer wait is work this tenant caused and wasted:
			// count it against the tenant and debit its bucket for the
			// buffers it tried to pin, so a flood of oversized waits
			// cannot starve the pool for free.
			c.tview.Inc(telemetry.TCtrSheds)
			if sh := c.t.cfg.QoS; sh != nil {
				now := int64(c.t.e.Now())
				sh.Bucket(c.tenant, now).Penalize(now, int64(n*c.t.cfg.ChunkSize))
			}
		}
		c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cid, Status: nvme.StatusCommandInterrupted}})
		return
	}
	c.t.BufferWaits++
	c.t.tel.Inc(telemetry.CtrSrvBufWaits)
	c.WaitsQ.TryPut(&AllocWait{need: n, since: c.t.e.Now(), run: fn})
}

// FreeBufs returns a buffer set to its pool.
func FreeBufs(bufs []*mempool.Buf) {
	for _, b := range bufs {
		b.Free()
	}
}

// handle processes one received message.
func (c *Conn) handle(p *sim.Proc, msg *netsim.Message) {
	c.lastSeen = p.Now()
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("%s server: bad message: %v", c.t.cfg.Label, err))
	}
	c.t.tel.Add(telemetry.CtrPDUsRx, int64(len(pdus)))
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.ICReq:
			c.wire.OnICReq(v)
		case *pdu.CapsuleCmd:
			c.onCommand(p, v, transit)
		case *pdu.CmdBatch:
			// A doorbell-batched capsule train: dispatch every entry as if
			// it arrived in its own capsule. Fabric transit is attributed
			// once (the train crossed the wire as one message). Reads
			// dispatch straight off the command value — only entries that
			// carry payload state need a capsule shell (which escapes
			// through the wire interface and so must heap-allocate).
			for i := range v.Entries {
				e := &v.Entries[i]
				if e.Cmd.Opcode == nvme.OpRead && e.Cmd.Flags&transport.AdminFlag == 0 {
					if c.qosAdmit(e.Cmd) {
						c.wire.DispatchRead(e.Cmd, transit)
					}
				} else {
					cc := pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
					c.onCommand(p, &cc, transit)
				}
				transit = 0
			}
		case *pdu.Data:
			c.onData(p, v, transit)
		case *pdu.Term:
			c.closed = true
			c.kick.Fire()
		default:
			if !c.wire.HandlePDU(p, u, transit) {
				panic(fmt.Sprintf("%s server: unexpected PDU %v", c.t.cfg.Label, u.Type()))
			}
		}
		transit = 0 // attribute a message's transit once
	}
}

// onCommand dispatches a command capsule.
func (c *Conn) onCommand(p *sim.Proc, cap *pdu.CapsuleCmd, transit time.Duration) {
	cmd := cap.Cmd
	if cmd.Opcode == nvme.FabricsCommandType {
		// Fabrics Connect validates the requested subsystem NQN before
		// any I/O is admitted.
		status := nvme.StatusInvalidField
		if cmd.CDW10 == nvme.FctypeConnect {
			if hostNQN, subNQN, err := nvme.DecodeConnectData(cap.Data); err == nil && subNQN == c.t.cfg.NQN {
				status = nvme.StatusSuccess
				// The tenant rides inside the hostNQN field: recover it
				// here so every command on this connection is attributed
				// (and, when a shaper is configured, admission-charged)
				// to the right tenant.
				_, c.tenant = SplitTenantHostNQN(hostNQN)
				c.tview = c.t.tel.Tenant(c.tenant)
			}
		}
		c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: status}})
		return
	}
	if cmd.Flags&transport.AdminFlag != 0 {
		c.onAdmin(cmd, transit)
		return
	}
	switch cmd.Opcode {
	case nvme.OpRead:
		if !c.qosAdmit(cmd) {
			return
		}
		c.wire.DispatchRead(cmd, transit)
	case nvme.OpWrite:
		if !c.qosAdmit(cmd) {
			return
		}
		c.wire.DispatchWrite(cap, int(cmd.NLB())*transport.BlockSize, transit)
	case nvme.OpFlush:
		// Copy into case scope: capturing cmd itself would heap-allocate
		// it for every command that passes through this dispatch.
		fcmd := cmd
		c.t.e.Go(c.t.flushWorker, func(w *sim.Proc) {
			res := c.t.tgt.ExecuteAs(w, c.t.cfg.NQN, c.tenant, fcmd, nil)
			c.Post(nil, c.Resp(res, transit, 0))
		})
	default:
		c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

// onAdmin dispatches admin-queue commands.
func (c *Conn) onAdmin(cmd nvme.Command, transit time.Duration) {
	switch cmd.Opcode {
	case nvme.AdminIdentify:
		c.execIdentify(cmd, transit)
	case nvme.AdminGetLogPage:
		c.execGetLogPage(cmd, transit)
	case nvme.AdminKeepAlive:
		c.Post(nil, &pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(transit),
		})
	default:
		c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

// execGetLogPage serves the discovery log page (Get Log Page, LID 0x70).
func (c *Conn) execGetLogPage(cmd nvme.Command, comm time.Duration) {
	if cmd.CDW10&0xFF != nvme.LIDDiscovery&0xFF {
		c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
		return
	}
	page := c.t.tgt.DiscoveryLog(c.wire.TrType(), "storage-host")
	c.Post(nil,
		&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
		&pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(comm),
		})
}

// execIdentify serves an identify admin command with a real data page.
func (c *Conn) execIdentify(cmd nvme.Command, comm time.Duration) {
	var page []byte
	switch cmd.CDW10 {
	case nvme.CNSController:
		id, err := c.t.tgt.IdentifyController(c.t.cfg.NQN)
		if err != nil {
			c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
			return
		}
		page = id.Encode()
	case nvme.CNSNamespace:
		sub, ok := c.t.tgt.Subsystem(c.t.cfg.NQN)
		if !ok {
			c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
			return
		}
		ns, ok := sub.Namespace(cmd.NSID)
		if !ok {
			c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidNamespace}})
			return
		}
		idns := ns.Identify()
		page = idns.Encode()
	default:
		c.Post(nil, &pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
		return
	}
	c.Post(nil,
		&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
		&pdu.CapsuleResp{
			Rsp:       nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess},
			TgtCommNs: uint64(comm),
		})
}

// StartConservativeWrite grants an R2T once buffers are reserved — the
// conservative (non-in-capsule) write flow shared by the TCP data paths.
func (c *Conn) StartConservativeWrite(cmd nvme.Command, size int, transit time.Duration) {
	if stale, ok := c.Writes[cmd.CID]; ok {
		// A retried command reused the CID of an abandoned earlier attempt
		// whose half-received grant is still parked here: reclaim it before
		// the new grant overwrites the map entry.
		FreeBufs(stale.Bufs)
		delete(c.Writes, cmd.CID)
		c.NoteStale()
	}
	need := transport.Chunks(size, c.t.cfg.ChunkSize)
	c.WithBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		ctx := &WriteCtx{Cmd: cmd, Size: size, Bufs: bufs, Comm: transit, Real: cmd.PRP2 == 1}
		c.Writes[cmd.CID] = ctx
		c.Post(nil, &pdu.R2T{CID: cmd.CID, TTag: cmd.CID, Offset: 0, Length: uint32(size)})
	})
}

// onData accumulates H2CData for a conservative write. Data for an
// unknown CID (late chunks of a write a teardown or failover already
// reclaimed) is dropped, not fatal.
func (c *Conn) onData(p *sim.Proc, d *pdu.Data, transit time.Duration) {
	ctx, ok := c.Writes[d.CID]
	if !ok {
		c.NoteStale()
		return
	}
	n := len(d.Payload)
	if n == 0 {
		n = d.VirtualLen
	}
	if d.Payload != nil {
		mempool.Scatter(ctx.Bufs, int(d.Offset), d.Payload)
		ctx.Staged = true
	}
	ctx.Received += n
	ctx.Comm += transit
	if ctx.Received >= ctx.Size {
		delete(c.Writes, d.CID)
		c.ExecWrite(ctx.Cmd, ctx.Size, ctx.Gather(), ctx.Comm, ctx.Bufs, ctx.CopyTime)
	}
}

// ExecWrite runs a fully received write on a device worker.
func (c *Conn) ExecWrite(cmd nvme.Command, size int, data []byte, comm time.Duration, bufs []*mempool.Buf, copyTime time.Duration) {
	c.t.e.Go(c.t.writeWorker, func(w *sim.Proc) {
		res := c.t.tgt.ExecuteAs(w, c.t.cfg.NQN, c.tenant, cmd, data)
		if bufs != nil {
			FreeBufs(bufs)
			c.kick.Fire() // buffer credits freed: retry waiters
		}
		c.Post(nil, c.Resp(res, comm, copyTime))
	})
}

// StartRead reserves chunk buffers and runs the read on a device worker;
// done receives the execute result (with the reserved buffers) unless
// the device failed, in which case the engine responds directly.
func (c *Conn) StartRead(cmd nvme.Command, transit time.Duration, done func(w *sim.Proc, res target.ExecResult, size int, bufs []*mempool.Buf)) {
	size := int(cmd.NLB()) * transport.BlockSize
	need := transport.Chunks(size, c.t.cfg.ChunkSize)
	c.WithBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		c.t.e.Go(c.t.readWorker, func(w *sim.Proc) {
			res := c.t.tgt.ExecuteAs(w, c.t.cfg.NQN, c.tenant, cmd, nil)
			if res.CQE.Status.IsError() {
				FreeBufs(bufs)
				c.kick.Fire()
				c.Post(nil, c.Resp(res, transit, 0))
				return
			}
			done(w, res, size, bufs)
		})
	})
}

// StartReadTCP is StartRead composed with SendReadOverTCP in one closure
// chain (no done indirection): the plain-TCP read path, kept allocation-
// equivalent to a hand-written binding for wires with no alternate read
// route.
func (c *Conn) StartReadTCP(cmd nvme.Command, transit time.Duration) {
	size := int(cmd.NLB()) * transport.BlockSize
	need := transport.Chunks(size, c.t.cfg.ChunkSize)
	c.WithBufs(cmd.CID, need, func(bufs []*mempool.Buf) {
		c.t.e.Go(c.t.readWorker, func(w *sim.Proc) {
			res := c.t.tgt.ExecuteAs(w, c.t.cfg.NQN, c.tenant, cmd, nil)
			if res.CQE.Status.IsError() {
				FreeBufs(bufs)
				c.kick.Fire()
				c.Post(nil, c.Resp(res, transit, 0))
				return
			}
			c.SendReadOverTCP(cmd, size, res, transit, bufs)
		})
	})
}

// SendReadOverTCP streams the payload as chunked C2HData PDUs; the final
// chunk travels with the response capsule in one message, and the
// reserved buffers release once the bytes are on the wire.
func (c *Conn) SendReadOverTCP(cmd nvme.Command, size int, res target.ExecResult, transit time.Duration, bufs []*mempool.Buf) {
	chunk := c.t.cfg.ChunkSize
	var batches []*txBatch
	transport.ChunkSizes(size, chunk, func(off, n int) {
		d := &pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Offset: uint32(off), Last: off+n >= size}
		if res.Data != nil {
			d.Payload = res.Data[off : off+n]
		} else {
			d.VirtualLen = n
		}
		batches = append(batches, &txBatch{pdus: []pdu.PDU{d}})
	})
	last := batches[len(batches)-1]
	last.pdus = append(last.pdus, c.Resp(res, transit, 0))
	last.after = func() { FreeBufs(bufs) }
	if c.dead {
		// Connection torn down while the read executed: reclaim without
		// transmitting.
		FreeBufs(bufs)
		return
	}
	for _, b := range batches {
		c.txQ.TryPut(b)
	}
	c.kick.Fire()
}

// Resp builds the response capsule with the timing trailer; the target's
// shared-memory copy time is accounted as target-side "other" (buffer
// management).
func (c *Conn) Resp(res target.ExecResult, comm time.Duration, copyTime time.Duration) *pdu.CapsuleResp {
	return &pdu.CapsuleResp{
		Rsp:        res.CQE,
		IOTimeNs:   uint64(res.IOTime),
		TgtCommNs:  uint64(comm),
		TgtOtherNs: uint64(res.OtherTime + copyTime),
	}
}
