package session

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// HostWire is what a transport binding implements to put the host
// engine on its wire. The engine owns everything CID- and lifecycle-
// shaped; the wire owns handshake contents, payload staging, capsule
// transmission, and path-specific PDUs.
type HostWire interface {
	// BuildICReq builds the handshake request (initial connect and
	// mid-stream reconnect negotiate the same way).
	BuildICReq(reconnect bool) *pdu.ICReq
	// AdoptICResp adopts renegotiated parameters after a mid-stream
	// reconnect (the data path may have changed).
	AdoptICResp(resp *pdu.ICResp)
	// Admit applies transport-specific admission checks beyond the
	// engine's common ones; StatusSuccess admits the I/O.
	Admit(io *transport.IO) nvme.Status
	// StageSubmit charges payload staging for one admitted I/O on the
	// submitting process (fill cost, slot claim + copy-in, ...).
	StageSubmit(p *sim.Proc, pend *Pending)
	// MakeIOEntry builds the wire entry (SQE + optional in-capsule
	// payload) for a read/write command and records per-path submit
	// telemetry. Admin and flush entries are engine-built.
	MakeIOEntry(pend *Pending) pdu.BatchEntry
	// Transmit sends one command capsule.
	Transmit(p *sim.Proc, e *pdu.BatchEntry)
	// TransmitTrain sends a multi-entry capsule train.
	TransmitTrain(p *sim.Proc, b *pdu.CmdBatch)
	// PollBudget returns the busy-poll budget for this reactor
	// iteration (0 = interrupt mode).
	PollBudget() time.Duration
	// PreReactor runs at the top of every reactor iteration (the
	// adaptive fabric checks for region revocation here).
	PreReactor(p *sim.Proc)
	// HandlePDU handles transport-specific PDUs; returning false makes
	// the engine panic on the unexpected PDU.
	HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool
	// ReleaseAttempt reclaims per-attempt staging resources (Stage)
	// when a command is torn down for retry or failure.
	ReleaseAttempt(pend *Pending)
}

// completionInterceptor is an optional HostWire extension: the wire sees
// completion-path PDUs before the engine's default handling and returns
// true to consume one (adjacent-request merging splits a merged
// completion back to its member CIDs this way). The Fabrics Connect
// response is never offered.
type completionInterceptor interface {
	InterceptData(p *sim.Proc, d *pdu.Data, transit time.Duration) bool
	InterceptResp(p *sim.Proc, r *pdu.CapsuleResp, transit time.Duration) bool
}

// TrainSizer is an optional HostWire extension: the wire chooses the
// doorbell-train depth for each drain round from the current submit-queue
// occupancy (dynamic doorbell coalescing). Returning 0 defers to the
// configured BatchSize.
type TrainSizer interface {
	TrainSize(queued int) int
}

// HostConfig configures the host-side session engine.
type HostConfig struct {
	// Label prefixes daemon names, error strings, and panics
	// ("oaf", "tcp", "rdma").
	Label string
	// NQN names the target subsystem; HostNQN identifies this host in
	// the Fabrics Connect command (DefaultHostNQN when empty).
	NQN     string
	HostNQN string
	// QueueDepth bounds outstanding commands.
	QueueDepth int
	// Host holds client software costs.
	Host model.HostParams
	// BatchSize is the submission-coalescing depth (0/1 = classic
	// one-capsule-per-message wire).
	BatchSize int
	// CommandTimeout, MaxRetries, RetryBackoff, KeepAlive: recovery
	// knobs, all off by default (see the transport configs for
	// semantics).
	CommandTimeout time.Duration
	MaxRetries     int
	RetryBackoff   time.Duration
	KeepAlive      time.Duration
	// InterruptWakeups charges the endpoint wakeup penalty when the
	// reactor parks and traffic arrives (interrupt-driven receive).
	// RDMA completion-queue polling leaves it off.
	InterruptWakeups bool
	// RNGStream names the seed-derived jitter stream for retry backoff
	// (default Label+"-client-retry").
	RNGStream string
	// Telemetry receives counters, histograms, and traces; nil
	// disables.
	Telemetry *telemetry.Sink
	// Tenant names the default tenant every I/O on this queue belongs to
	// (a per-IO Tenant overrides it). The name is carried to the target
	// once, inside the Fabrics Connect hostNQN field; empty leaves the
	// wire byte-identical to an untenanted build.
	Tenant string
	// QoS is the host-side token-bucket enforcement point shared by the
	// queues of one contention domain; nil disables host-side admission.
	// Inadmissible commands park in submission order and re-enter the
	// drain when their tenant's tokens refill (or ledger borrowing
	// covers them).
	QoS *qos.Shaper
}

// Host is the transport-independent host queue core.
type Host struct {
	e       *sim.Engine
	ep      *netsim.Endpoint
	wire    HostWire
	cfg     HostConfig
	cids    *nvme.CIDTable
	submitQ *sim.Queue[*Pending]
	kick    *sim.Signal
	icresp  *pdu.ICResp
	closing bool
	drained *sim.Signal
	rng     *rand.Rand
	tel     *telemetry.Sink
	icept   completionInterceptor
	sizer   TrainSizer

	// Hot-path recycling: pending-op freelist plus reactor-owned scratch
	// structures for the batched submission path. The engine is
	// cooperative, so plain slices suffice; scratch encode structures are
	// only touched by the reactor (SendPDUs serializes before yielding).
	freePends   []*Pending
	pendScratch []*Pending
	batch       pdu.CmdBatch
	capsule     pdu.CapsuleCmd
	entry       pdu.BatchEntry

	// Live-tunable knobs. These are the only engine state written from
	// outside the cooperative simulation (the tuning controller runs as
	// an engine daemon, but operators and the -race regression hammer
	// them from foreign goroutines), so they are atomics: the reactor
	// re-reads them every iteration and the new values take effect on
	// the next drain round — no reconnect, no restart.
	//
	// liveBatch is the submission-coalescing depth (overrides
	// cfg.BatchSize; <=1 = classic wire). livePollNs is the busy-poll
	// budget override in nanoseconds (<0 defers to the wire's own
	// policy). liveQD is a soft cap on outstanding commands, clamped to
	// [1, QueueDepth]; lowering it parks excess submissions in the
	// submit queue instead of the CID table.
	liveBatch  atomic.Int32
	livePollNs atomic.Int64
	liveQD     atomic.Int32

	// qosParked holds commands QoS admission refused, in submission
	// order; the drain consults it before the submit queue (skipping
	// still-throttled tenants so one dry bucket cannot head-of-line
	// block the rest). qosWake guards the single outstanding refill
	// wake timer.
	qosParked []*Pending
	qosWake   bool

	// backlog counts commands parked in retry backoff (neither queued nor
	// in flight); teardown waits for them.
	backlog int
	// consecTimeouts counts deadline expirations since the last
	// successful completion; crossing the threshold triggers reconnect.
	consecTimeouts int
	reconnecting   bool
	reconRetry     bool
	reconGen       int

	// Completed counts finished commands.
	Completed int64
	// Retries counts re-driven attempts; Timeouts counts per-command
	// deadline expirations; Reconnects counts re-established
	// connections; LateMsgs counts stale PDUs (for already-reaped
	// commands) dropped.
	Retries    int64
	Timeouts   int64
	Reconnects int64
	LateMsgs   int64
}

// NewHost builds the engine core. The binding must call Handshake (on
// the connecting process) and then Start.
func NewHost(e *sim.Engine, ep *netsim.Endpoint, cfg HostConfig, wire HostWire) *Host {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.RNGStream == "" {
		cfg.RNGStream = cfg.Label + "-client-retry"
	}
	h := &Host{
		e:       e,
		ep:      ep,
		wire:    wire,
		cfg:     cfg,
		cids:    nvme.NewCIDTable(cfg.QueueDepth),
		submitQ: sim.NewQueue[*Pending](e, 0),
		kick:    sim.NewSignal(e),
		drained: sim.NewSignal(e),
		rng:     e.Rand(cfg.RNGStream),
		tel:     cfg.Telemetry,
	}
	if h.tel == nil {
		h.tel = telemetry.Disabled
	}
	h.icept, _ = wire.(completionInterceptor)
	h.sizer, _ = wire.(TrainSizer)
	h.liveBatch.Store(int32(cfg.BatchSize))
	h.livePollNs.Store(-1)
	h.liveQD.Store(int32(cfg.QueueDepth))
	return h
}

// SetBatchSize adjusts the submission-coalescing depth live: the next
// drain round packs up to n commands per capsule train (n <= 1 restores
// the classic one-capsule-per-message wire). Safe to call from outside
// the engine.
func (h *Host) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	h.liveBatch.Store(int32(n))
}

// LiveBatchSize returns the coalescing depth currently in effect.
func (h *Host) LiveBatchSize() int { return int(h.liveBatch.Load()) }

// SetPollBudget overrides the receive busy-poll budget live (0 = pure
// interrupt mode). A negative budget removes the override, deferring to
// the wire's own policy (static config or the adaptive §4.5 policy).
func (h *Host) SetPollBudget(d time.Duration) { h.livePollNs.Store(int64(d)) }

// LivePollBudget returns the busy-poll override, or a negative duration
// when the wire's own policy is in effect.
func (h *Host) LivePollBudget() time.Duration { return time.Duration(h.livePollNs.Load()) }

// SetQDTarget caps outstanding commands live, clamped to
// [1, QueueDepth]. Commands beyond the target queue host-side until
// completions free room, trading throughput for queueing delay exactly
// like shrinking the hardware queue would — without reconnecting.
func (h *Host) SetQDTarget(n int) {
	if n < 1 {
		n = 1
	}
	if n > h.cfg.QueueDepth {
		n = h.cfg.QueueDepth
	}
	h.liveQD.Store(int32(n))
}

// QDTarget returns the live outstanding-command cap.
func (h *Host) QDTarget() int { return int(h.liveQD.Load()) }

// QueueDepth returns the connection's configured (hard) queue depth.
func (h *Host) QueueDepth() int { return h.cfg.QueueDepth }

// canStart reports whether another command may enter the CID table
// under both the hard depth and the live QD target.
func (h *Host) canStart() bool {
	return !h.cids.Full() && h.cids.Outstanding() < int(h.liveQD.Load())
}

// pollBudget resolves the receive busy-poll budget for this reactor
// iteration: the live override when set, else the wire's policy.
func (h *Host) pollBudget() time.Duration {
	if v := h.livePollNs.Load(); v >= 0 {
		return time.Duration(v)
	}
	return h.wire.PollBudget()
}

// Handshake performs the ICReq/ICResp exchange and the Fabrics Connect
// command on the calling process.
func (h *Host) Handshake(p *sim.Proc) error {
	transport.SendPDUs(p, h.ep, h.wire.BuildICReq(false))
	msg := h.ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return fmt.Errorf("%s: handshake: %w", h.cfg.Label, err)
	}
	icresp, ok := pdus[0].(*pdu.ICResp)
	if !ok {
		return fmt.Errorf("%s: handshake: unexpected %v", h.cfg.Label, pdus[0].Type())
	}
	h.icresp = icresp
	return h.fabricsConnect(p)
}

// fabricsConnect performs the NVMe-oF Connect command over the control
// path: the target validates the subsystem NQN before admitting I/O.
func (h *Host) fabricsConnect(p *sim.Proc) error {
	cmd := nvme.Command{Opcode: nvme.FabricsCommandType, CID: ConnectCID, CDW10: nvme.FctypeConnect}
	transport.SendPDUs(p, h.ep, &pdu.CapsuleCmd{Cmd: cmd, Data: nvme.EncodeConnectData(h.connectHostNQN(), h.cfg.NQN)})
	msg := h.ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return fmt.Errorf("%s: connect: %w", h.cfg.Label, err)
	}
	resp, ok := pdus[0].(*pdu.CapsuleResp)
	if !ok {
		return fmt.Errorf("%s: connect: unexpected %v", h.cfg.Label, pdus[0].Type())
	}
	if resp.Rsp.Status.IsError() {
		return fmt.Errorf("%s: connect rejected: %w", h.cfg.Label, resp.Rsp.Status.Error())
	}
	return nil
}

func (h *Host) hostNQN() string {
	if h.cfg.HostNQN != "" {
		return h.cfg.HostNQN
	}
	return DefaultHostNQN
}

// connectHostNQN is the hostNQN carried in Connect data: the bare host
// NQN with the queue's tenant folded in (unchanged when untenanted, so
// the wire stays byte-identical).
func (h *Host) connectHostNQN() string {
	return TenantHostNQN(h.hostNQN(), h.cfg.Tenant)
}

// Tenant returns the queue's default tenant ("" when untenanted).
func (h *Host) Tenant() string { return h.cfg.Tenant }

// tenantOf resolves the tenant an I/O belongs to: its own stamp, else
// the queue default.
func (h *Host) tenantOf(io *transport.IO) string {
	if io.Tenant != "" {
		return io.Tenant
	}
	return h.cfg.Tenant
}

// tview returns the telemetry view for an I/O's tenant (nil when
// untenanted or the sink is disabled; a nil view records nothing).
func (h *Host) tview(io *transport.IO) *telemetry.TenantView {
	return h.tel.Tenant(h.tenantOf(io))
}

// qosAdmit charges an I/O against its tenant's token bucket. Admin,
// flush, exempt, and untenanted traffic always passes, as does
// everything when no shaper is configured.
func (h *Host) qosAdmit(pend *Pending, nowNs int64) bool {
	io := pend.IO
	if h.cfg.QoS == nil || io.QoSExempt || io.Admin != 0 || io.Flush {
		return true
	}
	name := h.tenantOf(io)
	if name == "" {
		return true
	}
	b := h.cfg.QoS.Bucket(name, nowNs)
	if !b.Limited() {
		return true
	}
	return b.TryTake(nowNs, int64(io.Size))
}

// popAdmitted yields the next command the QoS gate admits: parked
// commands first (in park order, skipping tenants whose buckets are
// still dry so one throttled tenant cannot head-of-line block others),
// then the submit queue, parking whatever the gate refuses.
func (h *Host) popAdmitted(p *sim.Proc) (*Pending, bool) {
	now := int64(p.Now())
	for i, pend := range h.qosParked {
		if !h.qosAdmit(pend, now) {
			continue
		}
		h.qosParked = append(h.qosParked[:i], h.qosParked[i+1:]...)
		if tv := h.tview(pend.IO); tv != nil {
			tv.ObserveDuration(telemetry.THistTokenWait, p.Now().Sub(pend.qosParkAt))
		}
		pend.qosParkAt = 0
		return pend, true
	}
	for {
		pend, ok := h.submitQ.TryGet()
		if !ok {
			return nil, false
		}
		if h.qosAdmit(pend, now) {
			return pend, true
		}
		pend.qosParkAt = p.Now()
		h.tview(pend.IO).Inc(telemetry.TCtrTokenWaits)
		h.qosParked = append(h.qosParked, pend)
	}
}

// armQoSWake schedules one reactor wake-up for the oldest parked
// command's estimated refill time, so token waits end without any
// other traffic. The qosWake flag bounds it to one outstanding timer.
func (h *Host) armQoSWake(p *sim.Proc) {
	if len(h.qosParked) == 0 || h.qosWake || h.cfg.QoS == nil {
		return
	}
	pend := h.qosParked[0]
	now := int64(p.Now())
	wait := h.cfg.QoS.Bucket(h.tenantOf(pend.IO), now).WaitNs(now, int64(pend.IO.Size))
	h.qosWake = true
	h.e.After(time.Duration(wait), func() {
		h.qosWake = false
		h.kick.Fire()
	})
}

// Start launches the reactor (and, when configured, the keep-alive
// loop) as engine daemons.
func (h *Host) Start() {
	h.e.GoDaemon(h.cfg.Label+"-client-reactor", h.reactor)
	if h.cfg.KeepAlive > 0 {
		h.e.GoDaemon(h.cfg.Label+"-client-keepalive", h.keepAliveLoop)
	}
}

// ICResp returns the negotiated connection parameters.
func (h *Host) ICResp() *pdu.ICResp { return h.icresp }

// Telemetry returns the active sink (never nil), so wire bindings emit
// through the same sink the engine uses.
func (h *Host) Telemetry() *telemetry.Sink { return h.tel }

// Engine returns the simulation engine (for binding-owned futures and
// workers).
func (h *Host) Engine() *sim.Engine { return h.e }

// Closing reports whether orderly shutdown has begun.
func (h *Host) Closing() bool { return h.closing }

// Reconnecting reports whether a mid-stream reconnect is in progress.
func (h *Host) Reconnecting() bool { return h.reconnecting }

// Health implements transport.HealthReporter: the queue is dead once
// orderly shutdown has begun, degraded while a reconnect is in progress
// or command deadlines are expiring back to back (the connection is
// suspect but still retrying), and healthy otherwise.
func (h *Host) Health() transport.Health {
	switch {
	case h.closing:
		return transport.HealthDead
	case h.reconnecting || h.consecTimeouts > 0:
		return transport.HealthDegraded
	}
	return transport.HealthHealthy
}

// Kick wakes the reactor.
func (h *Host) Kick() { h.kick.Fire() }

// NoteLate counts a stale PDU for an already-reaped command.
func (h *Host) NoteLate() {
	h.LateMsgs++
	h.tel.Inc(telemetry.CtrLateMsgs)
}

// LookupPending resolves an in-flight command by CID for a wire PDU
// handler.
func (h *Host) LookupPending(cid uint16) (*Pending, bool) {
	ctx, ok := h.cids.Lookup(cid)
	if !ok {
		return nil, false
	}
	return ctx.(*Pending), true
}

// TakePending hands a binding (batch-submit override) a re-armed
// pending op.
func (h *Host) TakePending(io *transport.IO, fut *sim.Future[*transport.Result]) *Pending {
	return h.takePending(io, fut)
}

// Push stamps the submission time and queues the pending op without
// ringing the doorbell (batch-submit overrides kick once per train).
func (h *Host) Push(p *sim.Proc, pend *Pending) {
	pend.SubmitAt = p.Now()
	h.submitQ.TryPut(pend)
}

// AdmitIO validates one I/O against the engine's common limits and the
// wire's own, resolving the future with a typed error when it cannot be
// queued. It returns false when the command must not proceed.
func (h *Host) AdmitIO(io *transport.IO, fut *sim.Future[*transport.Result]) bool {
	if h.closing {
		fut.Resolve(&transport.Result{Status: nvme.StatusAbortRequested})
		return false
	}
	if io.Admin == 0 && !io.Flush && (io.Size <= 0 || io.Size%transport.BlockSize != 0 || io.Offset%transport.BlockSize != 0) {
		fut.Resolve(&transport.Result{Status: nvme.StatusInvalidField})
		return false
	}
	if st := h.wire.Admit(io); st != nvme.StatusSuccess {
		fut.Resolve(&transport.Result{Status: st})
		return false
	}
	return true
}

// Submit implements transport.Queue. The submitting process pays payload
// generation and any wire staging costs (shared-memory flow control
// pushes back here when all slots are busy).
func (h *Host) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	fut := sim.NewFuture[*transport.Result](h.e)
	if !h.AdmitIO(io, fut) {
		return fut
	}
	pend := h.takePending(io, fut)
	h.wire.StageSubmit(p, pend)
	p.Sleep(h.cfg.Host.SubmitCPU)
	pend.SubmitAt = p.Now()
	h.submitQ.TryPut(pend)
	h.kick.Fire()
	return fut
}

// SubmitBatch implements transport.BatchQueue: it stages every I/O with
// a single submit-CPU charge and a single reactor kick (one doorbell),
// so the reactor can coalesce the train into batch capsules. Bindings
// with amortized staging (the adaptive fabric's multi-slot claim)
// shadow this with their own override.
func (h *Host) SubmitBatch(p *sim.Proc, ios []*transport.IO) []*sim.Future[*transport.Result] {
	futs := make([]*sim.Future[*transport.Result], len(ios))
	pends := h.pendScratch[:0]
	for i, io := range ios {
		fut := sim.NewFuture[*transport.Result](h.e)
		futs[i] = fut
		if !h.AdmitIO(io, fut) {
			continue
		}
		pend := h.takePending(io, fut)
		h.wire.StageSubmit(p, pend)
		pends = append(pends, pend)
	}
	h.pendScratch = pends[:0]
	if len(pends) == 0 {
		return futs
	}
	p.Sleep(h.cfg.Host.SubmitCPU)
	for i, pend := range pends {
		pend.SubmitAt = p.Now()
		h.submitQ.TryPut(pend)
		pends[i] = nil
	}
	h.kick.Fire()
	return futs
}

// SubmitInto implements transport.RingSubmitter: one ring entry is
// staged into the caller-owned (recycled) future without allocating or
// ringing the doorbell. The staged train enters the reactor's normal
// batch drain on the next RingDoorbell, so ring traffic coalesces into
// capsule trains exactly like SubmitBatch traffic.
func (h *Host) SubmitInto(p *sim.Proc, io *transport.IO, fut *sim.Future[*transport.Result]) {
	if !h.AdmitIO(io, fut) {
		return
	}
	pend := h.takePending(io, fut)
	h.wire.StageSubmit(p, pend)
	pend.SubmitAt = p.Now()
	h.submitQ.TryPut(pend)
}

// RingDoorbell implements transport.RingSubmitter: one submit-CPU charge
// and one reactor kick for everything staged since the last doorbell.
func (h *Host) RingDoorbell(p *sim.Proc) {
	p.Sleep(h.cfg.Host.SubmitCPU)
	h.kick.Fire()
}

// Close initiates orderly shutdown.
func (h *Host) Close() {
	if h.closing {
		return
	}
	h.closing = true
	h.kick.Fire()
}

// WaitClosed blocks until the reactor has exited.
func (h *Host) WaitClosed(p *sim.Proc) { h.drained.Wait(p) }

// reactor is the connection's single-core event loop.
func (h *Host) reactor(p *sim.Proc) {
	h.ep.OnDeliver = h.kick.Fire
	defer h.drained.Fire()
	for {
		h.wire.PreReactor(p)
		worked := false
		if h.reconRetry {
			h.reconRetry = false
			if h.reconnecting && !h.closing {
				h.sendICReq(p)
				worked = true
			}
		}
		for h.canStart() && !h.reconnecting {
			// Depth is re-read per train so a TrainSizer wire can grow or
			// shrink the doorbell train as occupancy changes mid-drain.
			if depth := h.trainDepth(); depth > 1 {
				if !h.startTrain(p, depth) {
					break
				}
			} else {
				pend, ok := h.popAdmitted(p)
				if !ok {
					break
				}
				h.start(p, pend)
			}
			worked = true
		}
		if h.closing && h.reconnecting {
			// Tearing down with no usable connection: fail queued
			// commands with a typed, retryable-at-application error
			// rather than parking them forever.
			for {
				pend, ok := h.submitQ.TryGet()
				if !ok {
					break
				}
				pend.Fut.Resolve(&transport.Result{
					Status:  nvme.StatusTransientTransport,
					Latency: p.Now().Sub(pend.SubmitAt),
				})
				worked = true
			}
			for _, pend := range h.qosParked {
				pend.Fut.Resolve(&transport.Result{
					Status:  nvme.StatusTransientTransport,
					Latency: p.Now().Sub(pend.SubmitAt),
				})
				worked = true
			}
			h.qosParked = h.qosParked[:0]
		}
		for {
			msg := h.ep.TryRecv(p)
			if msg == nil {
				break
			}
			h.handle(p, msg)
			worked = true
		}
		if h.reapExpired(p) {
			worked = true
		}
		if worked {
			continue
		}
		if h.closing && h.cids.Outstanding() == 0 && h.submitQ.Len() == 0 && h.backlog == 0 && len(h.qosParked) == 0 {
			transport.SendPDUs(p, h.ep, &pdu.Term{Dir: pdu.TypeH2CTermReq})
			return
		}
		// Busy-poll the socket while commands are in flight: spin up to
		// the budget inside the receive path (SO_BUSY_POLL semantics).
		if budget := h.pollBudget(); budget > 0 && h.cids.Outstanding() > 0 {
			if msg := h.ep.RecvPoll(p, budget); msg != nil {
				h.handle(p, msg)
				continue
			}
			// Spin the budget, then fall through to the blocking wait.
			p.Sleep(PollMissCPU)
		}
		h.kick.Reset()
		h.armQoSWake(p)
		if h.closing && h.cids.Outstanding() == 0 && h.submitQ.Len() == 0 && h.backlog == 0 && len(h.qosParked) == 0 {
			continue
		}
		if h.ep.Pending() > 0 || (h.canStart() && !h.reconnecting && h.submitQ.Len() > 0) {
			continue
		}
		h.kick.Wait(p)
		if h.cfg.InterruptWakeups && h.ep.Pending() > 0 {
			h.ep.ChargeWakeup(p)
		}
	}
}

// maxRetries returns the per-command retry bound.
func (h *Host) maxRetries() int {
	if h.cfg.MaxRetries > 0 {
		return h.cfg.MaxRetries
	}
	return 3
}

// retryBase returns the backoff base.
func (h *Host) retryBase() time.Duration {
	if h.cfg.RetryBackoff > 0 {
		return h.cfg.RetryBackoff
	}
	return 100 * time.Microsecond
}

// backoff returns the delay before the given attempt: exponential in the
// attempt number, capped, plus deterministic seed-derived jitter so
// retrying queues don't synchronize into retry storms.
func (h *Host) backoff(attempt int) time.Duration {
	base := h.retryBase()
	d := base << uint(attempt-1)
	if max := 64 * base; d > max {
		d = max
	}
	return d + time.Duration(h.rng.Int63n(int64(base)))
}

// armDeadline schedules the per-command deadline for the current attempt.
// The generation check keeps a stale timer (for a completed or already
// retried attempt) from firing on a reused CID.
func (h *Host) armDeadline(pend *Pending) {
	if h.cfg.CommandTimeout <= 0 {
		return
	}
	gen := pend.Gen
	cid := pend.CID
	h.e.After(h.cfg.CommandTimeout, func() {
		if pend.Gen != gen || pend.Expired {
			return
		}
		ctx, ok := h.cids.Lookup(cid)
		if !ok {
			return
		}
		if cur, _ := ctx.(*Pending); cur != pend {
			return
		}
		pend.Expired = true
		h.kick.Fire()
	})
}

// reapExpired tears down deadline-hit commands: the CID frees (late
// responses for it are dropped as stale), staged payload reclaims, and
// the command either re-drives after backoff or fails with a typed
// transport error.
func (h *Host) reapExpired(p *sim.Proc) bool {
	if h.cfg.CommandTimeout <= 0 {
		return false
	}
	worked := false
	for i := 0; i < h.cids.Depth(); i++ {
		ctx, ok := h.cids.Lookup(uint16(i))
		if !ok {
			continue
		}
		pend := ctx.(*Pending)
		if !pend.Expired {
			continue
		}
		if _, err := h.cids.Complete(pend.CID); err != nil {
			panic(fmt.Sprintf("%s client: %v", h.cfg.Label, err))
		}
		h.Timeouts++
		h.tel.Inc(telemetry.CtrTimeouts)
		h.tel.Trace(int64(p.Now()), telemetry.EvTimeout, pend.CID, "", "deadline")
		h.consecTimeouts++
		h.requeueOrFail(p, pend)
		worked = true
	}
	if h.consecTimeouts >= 2 && !h.reconnecting && !h.closing {
		// Successive deadline hits mean the connection, not a command,
		// is sick: re-run the handshake (the target may have crashed and
		// restarted, or a KATO teardown dropped our connection state).
		h.startReconnect(p)
		worked = true
	}
	return worked
}

// requeueOrFail re-drives a torn-down command after a jittered backoff,
// or fails it with StatusTransientTransport once attempts are exhausted
// (or the client is closing). The caller must have freed the CID.
func (h *Host) requeueOrFail(p *sim.Proc, pend *Pending) {
	pend.Expired = false
	pend.Gen++
	pend.Received = 0
	pend.Sent = 0
	pend.DataLost = false
	pend.WNext, pend.WEnd = 0, 0
	h.wire.ReleaseAttempt(pend)
	if h.closing || pend.Attempts >= h.maxRetries() {
		pend.Fut.Resolve(&transport.Result{
			Status:  nvme.StatusTransientTransport,
			Latency: p.Now().Sub(pend.SubmitAt),
		})
		h.kick.Fire()
		return
	}
	pend.Attempts++
	h.Retries++
	h.tel.Inc(telemetry.CtrRetries)
	h.tel.Trace(int64(p.Now()), telemetry.EvRetry, pend.CID, "tcp", "backoff")
	h.backlog++
	h.e.After(h.backoff(pend.Attempts), func() {
		h.backlog--
		if h.closing {
			pend.Fut.Resolve(&transport.Result{
				Status:  nvme.StatusTransientTransport,
				Latency: h.e.Now().Sub(pend.SubmitAt),
			})
			h.kick.Fire()
			return
		}
		h.submitQ.TryPut(pend)
		h.kick.Fire()
	})
}

// keepAliveLoop enqueues a keep-alive admin command every interval. The
// commands ride the normal submission path, so they are subject to
// deadlines and drive crash detection even when the workload is idle.
func (h *Host) keepAliveLoop(p *sim.Proc) {
	for !h.closing {
		p.Sleep(h.cfg.KeepAlive)
		if h.closing {
			return
		}
		if h.reconnecting || h.cids.Full() {
			continue
		}
		pend := &Pending{Pending: transport.Pending{
			IO:  &transport.IO{Admin: nvme.AdminKeepAlive},
			Fut: sim.NewFuture[*transport.Result](h.e),
		}}
		pend.SubmitAt = p.Now()
		h.submitQ.TryPut(pend)
		h.kick.Fire()
	}
}

// startReconnect re-runs the handshake on the live endpoint. Until it
// completes, new submissions queue; in-flight commands keep timing out
// into the retry path and re-drive afterwards.
func (h *Host) startReconnect(p *sim.Proc) {
	h.reconnecting = true
	h.sendICReq(p)
}

// sendICReq (re)sends the handshake request and arms a retry timer in
// case it, or the response, is lost.
func (h *Host) sendICReq(p *sim.Proc) {
	h.reconGen++
	gen := h.reconGen
	transport.SendPDUs(p, h.ep, h.wire.BuildICReq(true))
	h.e.After(h.reconnectTimeout(), func() {
		if h.reconnecting && h.reconGen == gen && !h.closing {
			h.reconRetry = true
			h.kick.Fire()
		}
	})
}

func (h *Host) reconnectTimeout() time.Duration {
	if h.cfg.CommandTimeout > 0 {
		return h.cfg.CommandTimeout
	}
	return time.Millisecond
}

// batchDepth returns the submission-coalescing depth in effect (1 =
// classic one-capsule-per-message behaviour). It reads the live knob,
// so a SetBatchSize call changes the very next drain round.
func (h *Host) batchDepth() int {
	if b := int(h.liveBatch.Load()); b > 1 {
		return b
	}
	return 1
}

// trainDepth resolves the depth for the next doorbell train: a TrainSizer
// wire may override per round from queue occupancy; 0 defers to the
// configured BatchSize.
func (h *Host) trainDepth() int {
	if h.sizer != nil {
		if d := h.sizer.TrainSize(h.submitQ.Len()); d > 0 {
			return d
		}
	}
	return h.batchDepth()
}

// prepareStart allocates the CID, arms the deadline, and builds the wire
// entry for one command. It is the shared front half of start and
// startTrain.
func (h *Host) prepareStart(pend *Pending) pdu.BatchEntry {
	cid, err := h.cids.Alloc(pend)
	if err != nil {
		// Caller ensured a free CID; allocation cannot fail here.
		panic(err)
	}
	pend.CID = cid
	h.armDeadline(pend)
	io := pend.IO
	if io.Admin != 0 {
		return pdu.BatchEntry{Cmd: nvme.Command{Opcode: io.Admin, CID: cid, NSID: io.NSID, CDW10: io.CDW10, Flags: transport.AdminFlag}}
	}
	if io.Flush {
		// Flush carries no payload and no LBA range: it rides the control
		// channel on either data path.
		return pdu.BatchEntry{Cmd: nvme.NewFlush(cid, io.Nsid())}
	}
	return h.wire.MakeIOEntry(pend)
}

// SendCapsule transmits one entry as a classic command capsule using the
// reactor-owned scratch (SendPDUs serializes before yielding, so reuse
// across capsules is safe under the cooperative engine).
func (h *Host) SendCapsule(p *sim.Proc, e *pdu.BatchEntry) {
	h.capsule = pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
	transport.SendPDUs(p, h.ep, &h.capsule)
}

// start transmits one command capsule (the classic unbatched path). The
// entry rides the reactor-owned scratch: passing a stack local through
// the interface call would heap-allocate it per command, and every wire
// consumes the entry before yielding back.
func (h *Host) start(p *sim.Proc, pend *Pending) {
	h.entry = h.prepareStart(pend)
	h.wire.Transmit(p, &h.entry)
	h.entry = pdu.BatchEntry{}
}

// startTrain drains up to depth admissible commands from the submit
// queue and transmits them as one capsule train: a single network
// message, so the per-message CPU, wakeup penalty, and all but one
// common header are paid once for the whole batch. Returns false when
// the queue had nothing to send.
func (h *Host) startTrain(p *sim.Proc, depth int) bool {
	entries := h.batch.Entries[:0]
	for len(entries) < depth && h.canStart() {
		pend, ok := h.popAdmitted(p)
		if !ok {
			break
		}
		entries = append(entries, h.prepareStart(pend))
	}
	h.batch.Entries = entries
	if len(entries) == 0 {
		return false
	}
	h.tel.Observe(telemetry.HistBatchSize, int64(len(entries)))
	if len(entries) == 1 {
		// A train of one degenerates to the classic capsule: no batch
		// framing overhead, and single-command traffic stays on the
		// established wire format.
		h.wire.Transmit(p, &entries[0])
		return true
	}
	h.wire.TransmitTrain(p, &h.batch)
	return true
}

// handle processes one received network message.
func (h *Host) handle(p *sim.Proc, msg *netsim.Message) {
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("%s client: bad message: %v", h.cfg.Label, err))
	}
	h.tel.Add(telemetry.CtrPDUsRx, int64(len(pdus)))
	reaped := 0
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.Data:
			if h.icept == nil || !h.icept.InterceptData(p, v, transit) {
				h.onData(p, v, transit)
			}
		case *pdu.CapsuleResp:
			if h.icept == nil || v.Rsp.CID == ConnectCID || !h.icept.InterceptResp(p, v, transit) {
				h.onResp(p, v, transit)
			}
			reaped++
		case *pdu.ICResp:
			h.onReconnectICResp(p, v)
		case *pdu.Term:
			// Target-initiated termination: nothing outstanding to do.
		default:
			if !h.wire.HandlePDU(p, u, transit) {
				panic(fmt.Sprintf("%s client: unexpected PDU %v", h.cfg.Label, u.Type()))
			}
		}
		// A message's transit is attributed once even when several PDUs
		// were coalesced into it.
		transit = 0
	}
	if reaped > 0 {
		// Completions harvested per wakeup: the completion-reap analogue
		// of HistBatchSize (the target coalesces responses when batching).
		h.tel.Observe(telemetry.HistReapDepth, int64(reaped))
	}
}

// onReconnectICResp completes the first half of a mid-stream reconnect:
// adopt the renegotiated parameters (the data path may have changed) and
// send the Fabrics Connect command.
func (h *Host) onReconnectICResp(p *sim.Proc, resp *pdu.ICResp) {
	if !h.reconnecting {
		return
	}
	h.icresp = resp
	h.wire.AdoptICResp(resp)
	cmd := nvme.Command{Opcode: nvme.FabricsCommandType, CID: ConnectCID, CDW10: nvme.FctypeConnect}
	transport.SendPDUs(p, h.ep, &pdu.CapsuleCmd{Cmd: cmd, Data: nvme.EncodeConnectData(h.connectHostNQN(), h.cfg.NQN)})
}

// onData receives one read payload chunk over the plain wire.
func (h *Host) onData(p *sim.Proc, d *pdu.Data, transit time.Duration) {
	pend, ok := h.LookupPending(d.CID)
	if !ok {
		h.NoteLate() // late data for a command already reaped
		return
	}
	n := len(d.Payload)
	if n == 0 {
		n = d.VirtualLen
	}
	if d.Payload != nil && pend.IO.Data != nil {
		copy(pend.IO.Data[d.Offset:], d.Payload)
	}
	pend.Received += n
	pend.Comm += transit
}

// onResp completes a command — or, when the target reported a retryable
// typed error (shed under pressure, transfer failed mid-stream) or the
// payload went missing, re-drives it.
func (h *Host) onResp(p *sim.Proc, r *pdu.CapsuleResp, transit time.Duration) {
	if r.Rsp.CID == ConnectCID {
		h.onConnectResp(r)
		return
	}
	ctx, err := h.cids.Complete(r.Rsp.CID)
	if err != nil {
		// A response for a command the deadline already reaped: its CID
		// was freed (or reused by a later command that also completed).
		h.NoteLate()
		return
	}
	pend := ctx.(*Pending)
	pend.Comm += transit
	p.Sleep(h.cfg.Host.CompleteCPU)
	h.consecTimeouts = 0
	pend.Expired = false // response raced the deadline: response wins
	if h.cfg.CommandTimeout > 0 && !h.closing && (pend.DataLost || r.Rsp.Status.Retryable()) {
		h.requeueOrFail(p, pend)
		h.kick.Fire()
		return
	}
	var data []byte
	if !pend.IO.Write && pend.IO.Data != nil {
		n := pend.Received
		if n > len(pend.IO.Data) {
			n = len(pend.IO.Data)
		}
		data = pend.IO.Data[:n]
	}
	pend.Finish(p.Now(), r, data)
	h.Completed++
	h.tel.Inc(telemetry.CtrCompletions)
	if pend.IO.Admin == 0 {
		lat := p.Now().Sub(pend.SubmitAt)
		if pend.IO.Write {
			h.tel.ObserveDuration(telemetry.HistWriteLatency, lat)
		} else {
			h.tel.ObserveDuration(telemetry.HistReadLatency, lat)
		}
		if tv := h.tview(pend.IO); tv != nil {
			tv.Inc(telemetry.TCtrCompletions)
			tv.Add(telemetry.TCtrBytes, int64(pend.IO.Size))
			tv.ObserveDuration(telemetry.THistLatency, lat)
		}
	}
	h.recyclePending(pend)
	h.kick.Fire()
}

// DeliverResp feeds a wire-synthesized completion through the engine's
// normal completion path (CID free, retry logic, latency histograms,
// recycling). A merging wire uses it to fan a merged response back out
// to member commands.
func (h *Host) DeliverResp(p *sim.Proc, r *pdu.CapsuleResp, transit time.Duration) {
	h.onResp(p, r, transit)
}

// onConnectResp completes the second half of a mid-stream reconnect.
func (h *Host) onConnectResp(r *pdu.CapsuleResp) {
	if !h.reconnecting || r.Rsp.Status.IsError() {
		return // the handshake retry timer will try again
	}
	h.reconnecting = false
	h.consecTimeouts = 0
	h.Reconnects++
	h.tel.Inc(telemetry.CtrReconnects)
	h.tel.Trace(int64(h.e.Now()), telemetry.EvReconnect, 0, "", "handshake")
	h.kick.Fire()
}
