package nfs

import (
	"bytes"
	"testing"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

func rig(t *testing.T, seed int64) (*sim.Engine, *Client, *Server, bdev.Device) {
	t.Helper()
	e := sim.NewEngine(seed)
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	dev := bdev.NewSimSSD(e, "nfsdev", 1<<30, ssdParams, true, transport.BlockSize)
	link := netsim.NewLoopLink(e, model.TCP25G())
	srv := NewServer(e, link.B, dev, model.DefaultNFS())
	cli := NewClient(e, link.A, model.DefaultNFS())
	return e, cli, srv, dev
}

func TestWriteFlushReadBack(t *testing.T) {
	e, cli, srv, _ := rig(t, 1)
	e.Go("app", func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0xC3}, 100_000)
		if err := cli.WriteAt(p, 4096, data, len(data)); err != nil {
			t.Error(err)
		}
		if err := cli.Flush(p); err != nil {
			t.Error(err)
		}
		// Fresh client (cold cache) must read the committed bytes.
		link2 := netsim.NewLoopLink(e, model.TCP25G())
		NewServer(e, link2.B, srvDev(srv), model.DefaultNFS())
		cold := NewClient(e, link2.A, model.DefaultNFS())
		got := make([]byte, len(data))
		if err := cold.ReadAt(p, 4096, got, len(got)); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("data lost through NFS write+commit")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.WriteRPCs == 0 || srv.Commits == 0 {
		t.Fatalf("server saw %d writes %d commits", srv.WriteRPCs, srv.Commits)
	}
}

// srvDev exposes the server's device for test remounts.
func srvDev(s *Server) bdev.Device { return s.dev }

func TestWritesAbsorbedAtMemorySpeed(t *testing.T) {
	e, cli, srv, _ := rig(t, 2)
	e.Go("app", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 16; i++ {
			if err := cli.WriteAt(p, int64(i)<<20, nil, 1<<20); err != nil {
				t.Error(err)
			}
		}
		absorb := p.Now().Sub(t0)
		// 16 MB at ~8 GB/s cache speed: ~2 ms, far below the disk path.
		if absorb.Milliseconds() > 10 {
			t.Errorf("cache absorption took %v", absorb)
		}
		if srv.WriteRPCs != 0 {
			t.Error("writes reached the server before flush")
		}
		t0 = p.Now()
		if err := cli.Flush(p); err != nil {
			t.Error(err)
		}
		flush := p.Now().Sub(t0)
		if flush <= absorb {
			t.Errorf("flush (%v) should dominate absorption (%v)", flush, absorb)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushOnlySendsDirtyOnce(t *testing.T) {
	e, cli, srv, _ := rig(t, 3)
	e.Go("app", func(p *sim.Proc) {
		cli.WriteAt(p, 0, nil, 4<<20)
		cli.Flush(p)
		first := srv.WriteRPCs
		cli.Flush(p) // nothing dirty: no-op
		if srv.WriteRPCs != first {
			t.Error("second flush re-sent clean data")
		}
		cli.WriteAt(p, 8<<20, nil, 1<<20)
		cli.Flush(p)
		if srv.WriteRPCs != first+1 {
			t.Errorf("incremental flush sent %d RPCs, want 1", srv.WriteRPCs-first)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitServesReads(t *testing.T) {
	e, cli, _, _ := rig(t, 4)
	e.Go("app", func(p *sim.Proc) {
		data := []byte("cached-read-data")
		cli.WriteAt(p, 0, data, len(data))
		got := make([]byte, len(data))
		if err := cli.ReadAt(p, 0, got, len(got)); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("cache read mismatch")
		}
		if cli.CacheHits == 0 {
			t.Error("expected cache hit")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAheadWindows(t *testing.T) {
	e, cli, srv, dev := rig(t, 5)
	e.Go("app", func(p *sim.Proc) {
		// Pre-populate the device directly.
		_ = dev
		// Sequential modeled reads: the window amortizes RPCs.
		for off := int64(0); off < 16<<20; off += 1 << 20 {
			if err := cli.ReadAt(p, off, nil, 1<<20); err != nil {
				t.Error(err)
			}
		}
		// 16 MB via 4 MB windows = 4 window fetches x 4 RPCs = 16 RPCs,
		// not one per ReadAt beyond that.
		if srv.ReadRPCs != 16 {
			t.Errorf("read RPCs %d, want 16", srv.ReadRPCs)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyThrottlingFlushesInline(t *testing.T) {
	e := sim.NewEngine(6)
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	dev := bdev.NewSimSSD(e, "nfsdev", 1<<30, ssdParams, false, transport.BlockSize)
	link := netsim.NewLoopLink(e, model.TCP25G())
	params := model.DefaultNFS()
	params.CacheBytes = 8 << 20 // tiny cache
	NewServer(e, link.B, dev, params)
	cli := NewClient(e, link.A, params)
	e.Go("app", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if err := cli.WriteAt(p, int64(i)<<20, nil, 1<<20); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if cli.Flushes == 0 {
		t.Fatal("small cache should force inline writeback")
	}
}
