// Package nfs implements the NFS baseline of the paper's h5bench
// comparison (§5.7.1): an async-mounted network file system with a
// client-side page cache and a server exporting a file backed by the same
// class of NVMe-SSD.
//
// The behaviour the experiments depend on is modeled faithfully:
//
//   - writes land in the client cache at memory speed (the async mount's
//     advantage while the kernel runs);
//   - close-to-open consistency flushes all dirty pages at close and
//     COMMITs them, forcing the server's disk writes — the measured
//     h5bench window therefore includes the full backend path;
//   - sequential reads use a bounded readahead window; the server's page
//     cache is cold for the read kernel (fresh mount), so reads pay the
//     disk.
package nfs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/ssd"
)

// RPC opcodes.
const (
	opWrite  = 1
	opRead   = 2
	opCommit = 3
	opReply  = 4
)

// rpcHeaderLen is the wire size of an RPC header.
const rpcHeaderLen = 22

// encodeRPC builds an RPC message. Payload may be nil with a modeled
// size.
func encodeRPC(op uint8, xid uint32, off int64, size int, data []byte) *netsim.Message {
	hdr := make([]byte, rpcHeaderLen, rpcHeaderLen+len(data))
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], xid)
	binary.LittleEndian.PutUint64(hdr[5:], uint64(off))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(size))
	if data != nil {
		hdr[17] = 1
	}
	msg := &netsim.Message{Data: append(hdr, data...)}
	if data == nil {
		msg.Wire = rpcHeaderLen + size
	}
	return msg
}

// rpc is a decoded message.
type rpc struct {
	op   uint8
	xid  uint32
	off  int64
	size int
	data []byte
}

func decodeRPC(msg *netsim.Message) (rpc, error) {
	b := msg.Data
	if len(b) < rpcHeaderLen {
		return rpc{}, fmt.Errorf("nfs: short RPC: %d bytes", len(b))
	}
	r := rpc{
		op:   b[0],
		xid:  binary.LittleEndian.Uint32(b[1:]),
		off:  int64(binary.LittleEndian.Uint64(b[5:])),
		size: int(binary.LittleEndian.Uint32(b[13:])),
	}
	if b[17] == 1 {
		r.data = b[rpcHeaderLen:]
	}
	return r, nil
}

// Server exports one flat file (a bdev) over a network endpoint.
type Server struct {
	e      *sim.Engine
	ep     *netsim.Endpoint
	dev    bdev.Device
	params model.NFSParams

	// dirty tracks unstable (acknowledged but uncommitted) extents.
	dirty []extent

	// WriteRPCs, ReadRPCs, Commits count served operations.
	WriteRPCs, ReadRPCs, Commits int64
}

type extent struct {
	off   int64
	size  int
	data  []byte
	dirty bool
}

// NewServer starts an NFS server on ep backed by dev.
func NewServer(e *sim.Engine, ep *netsim.Endpoint, dev bdev.Device, params model.NFSParams) *Server {
	s := &Server{e: e, ep: ep, dev: dev, params: params}
	e.GoDaemon("nfs-server", s.run)
	return s
}

func (s *Server) run(p *sim.Proc) {
	for {
		msg := s.ep.Recv(p)
		req, err := decodeRPC(msg)
		if err != nil {
			panic(err)
		}
		p.Sleep(s.params.PerRPCCPU)
		switch req.op {
		case opWrite:
			// Async export: the write lands in server memory and is
			// acknowledged unstable; the disk write happens at COMMIT.
			s.WriteRPCs++
			var data []byte
			if req.data != nil {
				data = append([]byte(nil), req.data[:req.size]...)
			}
			s.dirty = append(s.dirty, extent{off: req.off, size: req.size, data: data})
			s.ep.Send(p, encodeRPC(opReply, req.xid, req.off, 0, nil))
		case opRead:
			// nfsd thread pool: disk reads proceed concurrently, replies
			// are posted back through the shared connection.
			s.ReadRPCs++
			req := req
			s.e.Go("nfsd-read", func(w *sim.Proc) {
				res := s.dev.Submit(&ssd.Request{Op: ssd.OpRead, Offset: req.off, Size: req.size}).Wait(w)
				if res.Err != nil {
					panic(res.Err)
				}
				s.ep.Send(w, encodeRPC(opReply, req.xid, req.off, req.size, res.Data))
			})
		case opCommit:
			// Force unstable writes to disk before replying.
			s.Commits++
			s.commit(p)
			s.ep.Send(p, encodeRPC(opReply, req.xid, 0, 0, nil))
		default:
			panic(fmt.Sprintf("nfs: unknown op %d", req.op))
		}
	}
}

// commit writes all dirty extents to the device with CommitDepth
// concurrency.
func (s *Server) commit(p *sim.Proc) {
	extents := s.dirty
	s.dirty = nil
	sort.Slice(extents, func(i, j int) bool { return extents[i].off < extents[j].off })
	depth := s.params.CommitDepth
	if depth <= 0 {
		depth = 1
	}
	doneQ := sim.NewQueue[error](s.e, 0)
	outstanding := 0
	next := 0
	issue := func() {
		e := extents[next]
		next++
		outstanding++
		fut := s.dev.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: e.off, Size: e.size, Data: e.data})
		fut.OnResolve(func(r ssd.Result) { doneQ.TryPut(r.Err) })
	}
	for next < len(extents) && outstanding < depth {
		issue()
	}
	for outstanding > 0 {
		err, _ := doneQ.Get(p)
		outstanding--
		if err != nil {
			panic(err)
		}
		if next < len(extents) {
			issue()
		}
	}
}

// Client is an async-mounted NFS client implementing hdf5.Storage.
type Client struct {
	e      *sim.Engine
	ep     *netsim.Endpoint
	params model.NFSParams
	xid    uint32

	// page cache: cached extents (written or prefetched).
	cached     []extent
	dirtyBytes int
	// readahead windows, one per concurrent sequential stream.
	windows []raWindow

	// CacheHits, CacheMisses, Flushes count client-side events.
	CacheHits, CacheMisses, Flushes int64
}

// NewClient mounts the export reachable through ep.
func NewClient(e *sim.Engine, ep *netsim.Endpoint, params model.NFSParams) *Client {
	if params.WSize == 0 {
		params = model.DefaultNFS()
	}
	return &Client{e: e, ep: ep, params: params}
}

// call performs one synchronous RPC.
func (c *Client) call(p *sim.Proc, op uint8, off int64, size int, data []byte) *netsim.Message {
	c.xid++
	p.Sleep(c.params.PerRPCCPU)
	c.ep.Send(p, encodeRPC(op, c.xid, off, size, data))
	return c.ep.Recv(p)
}

// cacheCopy charges the page-cache memcpy for size bytes.
func (c *Client) cacheCopy(p *sim.Proc, size int) {
	p.Sleep(time.Duration(float64(size) / c.params.CacheCopyBytesPerSec * 1e9))
}

// WriteAt implements hdf5.Storage: the async mount absorbs the write into
// the page cache at memory speed; dirty data flushes at Flush (close) or
// when the cache budget is exceeded.
func (c *Client) WriteAt(p *sim.Proc, off int64, data []byte, size int) error {
	if size <= 0 {
		return nil
	}
	c.cacheCopy(p, size)
	var stored []byte
	if data != nil {
		stored = append([]byte(nil), data[:size]...)
	}
	c.mergeCached(extent{off: off, size: size, data: stored, dirty: true})
	c.dirtyBytes += size
	if c.dirtyBytes > c.params.CacheBytes {
		// Dirty-ratio throttling: write back inline.
		return c.Flush(p)
	}
	return nil
}

// mergeCached appends or extends a cached extent (sequential pattern).
func (c *Client) mergeCached(e extent) {
	for i := range c.cached {
		ex := &c.cached[i]
		if ex.off+int64(ex.size) == e.off && (ex.data == nil) == (e.data == nil) && ex.dirty == e.dirty {
			if ex.data != nil {
				ex.data = append(ex.data, e.data...)
			}
			ex.size += e.size
			return
		}
	}
	c.cached = append(c.cached, e)
}

// raWindow is one prefetched range.
type raWindow struct{ off, end int64 }

// maxRAWindows bounds per-stream readahead state, as the kernel's
// per-file readahead tracks a bounded number of streams.
const maxRAWindows = 16

// lookup returns cached bytes covering [off, off+size), if any extent
// fully contains the range.
func (c *Client) lookup(off int64, size int) (extent, bool) {
	for _, ex := range c.cached {
		if off >= ex.off && off+int64(size) <= ex.off+int64(ex.size) {
			return ex, true
		}
	}
	return extent{}, false
}

// ReadAt implements hdf5.Storage: cache hit at memory speed, otherwise
// RPC reads with sequential readahead.
func (c *Client) ReadAt(p *sim.Proc, off int64, buf []byte, size int) error {
	if size <= 0 {
		return nil
	}
	if ex, ok := c.lookup(off, size); ok {
		c.CacheHits++
		c.cacheCopy(p, size)
		if buf != nil && ex.data != nil {
			copy(buf[:size], ex.data[off-ex.off:])
		}
		return nil
	}
	c.CacheMisses++
	if buf == nil {
		for _, w := range c.windows {
			if off >= w.off && off+int64(size) <= w.end {
				// Served by a readahead window.
				c.cacheCopy(p, size)
				return nil
			}
		}
	}
	if buf == nil {
		// Sequential modeled read: fetch a readahead window in rsize
		// RPCs, keeping FlushDepth requests in flight (RPC slot table).
		win := int64(c.params.ReadAheadBytes)
		if win < int64(size) {
			win = int64(size)
		}
		depth := c.params.ReadDepth
		if depth <= 0 {
			depth = 1
		}
		inFlight := 0
		fetched := int64(0)
		for fetched < win {
			n := c.params.RSize
			if int64(n) > win-fetched {
				n = int(win - fetched)
			}
			c.xid++
			p.Sleep(c.params.PerRPCCPU)
			c.ep.Send(p, encodeRPC(opRead, c.xid, off+fetched, n, nil))
			fetched += int64(n)
			inFlight++
			if inFlight >= depth {
				c.ep.Recv(p)
				inFlight--
			}
		}
		for inFlight > 0 {
			c.ep.Recv(p)
			inFlight--
		}
		c.windows = append(c.windows, raWindow{off: off, end: off + win})
		if len(c.windows) > maxRAWindows {
			c.windows = c.windows[1:]
		}
		return nil
	}
	// Real-byte read: rsize RPCs, assembling the payload.
	got := 0
	for got < size {
		n := c.params.RSize
		if n > size-got {
			n = size - got
		}
		reply := c.call(p, opRead, off+int64(got), n, nil)
		rep, err := decodeRPC(reply)
		if err != nil {
			return err
		}
		if rep.data != nil {
			copy(buf[got:got+n], rep.data)
		}
		got += n
	}
	return nil
}

// Flush implements hdf5.Storage: close-to-open consistency. Dirty extents
// stream to the server as wsize WRITE RPCs with FlushDepth in flight,
// then a COMMIT forces them to disk.
func (c *Client) Flush(p *sim.Proc) error {
	if c.dirtyBytes == 0 {
		return nil
	}
	c.Flushes++
	type chunk struct {
		off  int64
		size int
		data []byte
	}
	var chunks []chunk
	for i := range c.cached {
		ex := &c.cached[i]
		if !ex.dirty {
			continue
		}
		ex.dirty = false
		for o := 0; o < ex.size; o += c.params.WSize {
			n := c.params.WSize
			if n > ex.size-o {
				n = ex.size - o
			}
			ck := chunk{off: ex.off + int64(o), size: n}
			if ex.data != nil {
				ck.data = ex.data[o : o+n]
			}
			chunks = append(chunks, ck)
		}
	}
	// Pipeline WRITE RPCs with FlushDepth outstanding. Replies return in
	// FIFO order on the connection, so awaiting one reply per issued
	// request beyond the window keeps exactly FlushDepth in flight.
	depth := c.params.FlushDepth
	if depth <= 0 {
		depth = 1
	}
	inFlight := 0
	for _, ck := range chunks {
		c.xid++
		p.Sleep(c.params.PerRPCCPU)
		c.ep.Send(p, encodeRPC(opWrite, c.xid, ck.off, ck.size, ck.data))
		inFlight++
		if inFlight >= depth {
			c.ep.Recv(p)
			inFlight--
		}
	}
	for inFlight > 0 {
		c.ep.Recv(p)
		inFlight--
	}
	c.call(p, opCommit, 0, 0, nil)
	c.dirtyBytes = 0
	// Written data stays cached clean for subsequent reads this session.
	return nil
}
