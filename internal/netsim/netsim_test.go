package netsim

import (
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
)

// flatParams returns link params with zeroed CPU/penalty costs so tests can
// isolate wire behaviour.
func flatParams(bps float64, prop time.Duration) model.LinkParams {
	return model.LinkParams{Name: "test", WireBytesPerSec: bps, Propagation: prop}
}

func TestSingleMessageLatency(t *testing.T) {
	e := sim.NewEngine(1)
	// 1e9 B/s, 10us propagation: a 1000-byte message serializes in 1us
	// twice (tx wire + rx wire) and propagates in 10us => 12us.
	link := NewLoopLink(e, flatParams(1e9, 10*time.Microsecond))
	var recvAt sim.Time
	e.Go("rx", func(p *sim.Proc) {
		link.B.Recv(p)
		recvAt = p.Now()
	})
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: make([]byte, 1000)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(12 * time.Microsecond)
	if recvAt != want {
		t.Fatalf("received at %v, want %v", recvAt, want)
	}
}

func TestWireSizeOverride(t *testing.T) {
	e := sim.NewEngine(1)
	link := NewLoopLink(e, flatParams(1e9, 0))
	var recvAt sim.Time
	e.Go("rx", func(p *sim.Proc) {
		m := link.B.Recv(p)
		recvAt = p.Now()
		if len(m.Data) != 10 {
			t.Errorf("data length %d", len(m.Data))
		}
	})
	e.Go("tx", func(p *sim.Proc) {
		// 10 bytes of real data but 10000 on the wire (e.g. modeled
		// payload): 10us tx + 10us rx serialization.
		link.A.Send(p, &Message{Data: make([]byte, 10), Wire: 10000})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != sim.Time(20*time.Microsecond) {
		t.Fatalf("received at %v, want 20us", recvAt)
	}
}

func TestStreamIsWireBandwidthBound(t *testing.T) {
	e := sim.NewEngine(1)
	p := flatParams(1e9, 5*time.Microsecond)
	link := NewLoopLink(e, p)
	const n, size = 200, 64 << 10
	var done sim.Time
	e.Go("rx", func(pr *sim.Proc) {
		for i := 0; i < n; i++ {
			link.B.Recv(pr)
		}
		done = pr.Now()
	})
	e.Go("tx", func(pr *sim.Proc) {
		for i := 0; i < n; i++ {
			link.A.Send(pr, &Message{Data: make([]byte, size)})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	gbps := float64(n*size) / done.Seconds() / 1e9
	if gbps < 0.90 || gbps > 1.0 {
		t.Fatalf("stream bandwidth %.3f GB/s, want ~0.95", gbps)
	}
}

func TestSharedNICContention(t *testing.T) {
	e := sim.NewEngine(1)
	p := flatParams(1e9, 5*time.Microsecond)
	shared := NewNIC(e, p.WireBytesPerSec)
	const n, size = 100, 64 << 10
	finish := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		remote := NewNIC(e, p.WireBytesPerSec)
		link := NewLink(e, p, shared, remote)
		e.Go("rx", func(pr *sim.Proc) {
			for j := 0; j < n; j++ {
				link.B.Recv(pr)
			}
			finish[i] = pr.Now()
		})
		e.Go("tx", func(pr *sim.Proc) {
			for j := 0; j < n; j++ {
				link.A.Send(pr, &Message{Data: make([]byte, size)})
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	last := finish[0]
	if finish[1] > last {
		last = finish[1]
	}
	agg := float64(2*n*size) / last.Seconds() / 1e9
	if agg < 0.90 || agg > 1.0 {
		t.Fatalf("aggregate over shared NIC %.3f GB/s, want ~0.95 (shared wire)", agg)
	}
}

func TestStackCPUCostCharged(t *testing.T) {
	e := sim.NewEngine(1)
	params := model.LinkParams{
		Name:            "cpu",
		WireBytesPerSec: 1e12, // wire negligible
		PerMsgCPU:       10 * time.Microsecond,
		PerByteCPUNanos: 1,
	}
	link := NewLoopLink(e, params)
	var sendDone sim.Time
	e.Go("rx", func(p *sim.Proc) { link.B.Recv(p) })
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: make([]byte, 10000)})
		sendDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Sender pays 10us + 10000ns = 20us of CPU.
	if sendDone != sim.Time(20*time.Microsecond) {
		t.Fatalf("send returned at %v, want 20us", sendDone)
	}
}

func TestInterruptWakeupPenalty(t *testing.T) {
	e := sim.NewEngine(1)
	params := flatParams(1e12, 0)
	params.WakeupPenalty = 15 * time.Microsecond
	link := NewLoopLink(e, params)
	var recvAt sim.Time
	e.Go("rx", func(p *sim.Proc) {
		link.B.Recv(p) // blocks: penalty applies
		recvAt = p.Now()
	})
	e.Go("tx", func(p *sim.Proc) {
		p.Sleep(100 * time.Microsecond)
		link.A.Send(p, &Message{Data: make([]byte, 1)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != sim.Time(115*time.Microsecond) {
		t.Fatalf("recv at %v, want 115us (100 arrival + 15 penalty)", recvAt)
	}
	if link.B.Wakeups != 1 {
		t.Fatalf("wakeups = %d", link.B.Wakeups)
	}
}

func TestNoPenaltyWhenDataReady(t *testing.T) {
	e := sim.NewEngine(1)
	params := flatParams(1e12, 0)
	params.WakeupPenalty = 15 * time.Microsecond
	link := NewLoopLink(e, params)
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: make([]byte, 1)})
	})
	e.Go("rx", func(p *sim.Proc) {
		p.Sleep(50 * time.Microsecond) // message already delivered
		start := p.Now()
		link.B.Recv(p)
		if p.Now() != start {
			t.Errorf("penalty charged for ready data: %v -> %v", start, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if link.B.Wakeups != 0 {
		t.Fatalf("wakeups = %d, want 0", link.B.Wakeups)
	}
}

func TestBusyPollHitAndMiss(t *testing.T) {
	e := sim.NewEngine(1)
	params := flatParams(1e12, 0)
	params.WakeupPenalty = 15 * time.Microsecond
	link := NewLoopLink(e, params)
	e.Go("tx", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		link.A.Send(p, &Message{Data: make([]byte, 1)})
	})
	e.Go("rx", func(p *sim.Proc) {
		// First poll misses (budget 5us < 10us arrival).
		if m := link.B.RecvPoll(p, 5*time.Microsecond); m != nil {
			t.Error("expected miss")
		}
		if p.Now() != sim.Time(5*time.Microsecond) {
			t.Errorf("poll miss should burn full budget, now=%v", p.Now())
		}
		// Second poll hits at arrival with no wakeup penalty.
		if m := link.B.RecvPoll(p, 50*time.Microsecond); m == nil {
			t.Error("expected hit")
		}
		if p.Now() != sim.Time(10*time.Microsecond) {
			t.Errorf("hit at %v, want 10us", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if link.B.PollHits != 1 || link.B.PollMisses != 1 {
		t.Fatalf("hits=%d misses=%d", link.B.PollHits, link.B.PollMisses)
	}
}

func TestTryRecv(t *testing.T) {
	e := sim.NewEngine(1)
	link := NewLoopLink(e, flatParams(1e12, 0))
	e.Go("rx", func(p *sim.Proc) {
		if m := link.B.TryRecv(p); m != nil {
			t.Error("TryRecv on empty inbox should return nil")
		}
		p.Sleep(time.Millisecond)
		if m := link.B.TryRecv(p); m == nil {
			t.Error("TryRecv should return delivered message")
		}
	})
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: make([]byte, 8)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSenderBackpressure(t *testing.T) {
	e := sim.NewEngine(1)
	// Slow wire: 1e6 B/s. 100 KB takes 100 ms >> 2 ms backlog cap, so a
	// second send must block until the backlog drains below the cap.
	link := NewLoopLink(e, flatParams(1e6, 0))
	var secondSendAt sim.Time
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: make([]byte, 100_000)})
		link.A.Send(p, &Message{Data: make([]byte, 1)})
		secondSendAt = p.Now()
	})
	e.Go("rx", func(p *sim.Proc) {
		link.B.Recv(p)
		link.B.Recv(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if secondSendAt < sim.Time(80*time.Millisecond) {
		t.Fatalf("second send returned at %v; backpressure not applied", secondSendAt)
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	e := sim.NewEngine(1)
	link := NewLoopLink(e, flatParams(1e9, 3*time.Microsecond))
	var got []byte
	e.Go("tx", func(p *sim.Proc) {
		for i := byte(0); i < 10; i++ {
			link.A.Send(p, &Message{Data: []byte{i}})
		}
	})
	e.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			m := link.B.Recv(p)
			got = append(got, m.Data[0])
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestCounters(t *testing.T) {
	e := sim.NewEngine(1)
	link := NewLoopLink(e, flatParams(1e9, 0))
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: make([]byte, 100)})
		link.A.Send(p, &Message{Data: make([]byte, 200)})
	})
	e.Go("rx", func(p *sim.Proc) {
		link.B.Recv(p)
		link.B.Recv(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if link.A.MsgsSent != 2 || link.A.BytesSent != 300 {
		t.Fatalf("tx counters: %d msgs %d bytes", link.A.MsgsSent, link.A.BytesSent)
	}
	if link.B.MsgsRecv != 2 || link.B.BytesRecv != 300 {
		t.Fatalf("rx counters: %d msgs %d bytes", link.B.MsgsRecv, link.B.BytesRecv)
	}
}

func TestLossRetransmissionDelaysDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	params := flatParams(1e9, 10*time.Microsecond)
	link := NewLoopLink(e, params)
	link.A.SetLoss(1.0, 500*time.Microsecond) // every segment lost once
	var recvAt sim.Time
	e.Go("rx", func(p *sim.Proc) {
		link.B.Recv(p)
		recvAt = p.Now()
	})
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: make([]byte, 1000)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1us tx + 500us RTO + 1us retransmit + 10us prop + 1us rx = 513us.
	if recvAt < sim.Time(500*time.Microsecond) {
		t.Fatalf("lost segment delivered at %v; retransmission not modeled", recvAt)
	}
	if link.A.Retransmits != 1 {
		t.Fatalf("retransmits %d", link.A.Retransmits)
	}
}

func TestLossDisabledByDefault(t *testing.T) {
	e := sim.NewEngine(1)
	link := NewLoopLink(e, flatParams(1e9, 0))
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			link.A.Send(p, &Message{Data: make([]byte, 100)})
		}
	})
	e.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			link.B.Recv(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if link.A.Retransmits != 0 {
		t.Fatalf("unexpected retransmits %d", link.A.Retransmits)
	}
}

func TestTracerRecordsBothDirections(t *testing.T) {
	e := sim.NewEngine(1)
	link := NewLoopLink(e, flatParams(1e9, 0))
	tr := NewTracer("test-ep")
	link.A.AttachTracer(tr)
	e.Go("tx", func(p *sim.Proc) {
		link.A.Send(p, &Message{Data: mustPDU(t)})
	})
	e.Go("rx", func(p *sim.Proc) {
		link.B.Recv(p)
		link.B.Send(p, &Message{Data: mustPDU(t)})
	})
	e.Go("rx2", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		link.A.Recv(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events %d, want 2", len(evs))
	}
	if evs[0].Dir != "tx" || evs[1].Dir != "rx" {
		t.Fatalf("directions: %+v", evs)
	}
	if len(evs[0].PDUs) != 1 {
		t.Fatalf("pdus: %+v", evs[0])
	}
	if tr.String() == "" {
		t.Fatal("empty trace rendering")
	}
}

// mustPDU builds a valid R2T encoding for trace tests.
func mustPDU(t *testing.T) []byte {
	t.Helper()
	return (&tracePDU{}).encode()
}

type tracePDU struct{}

func (*tracePDU) encode() []byte {
	// An R2T PDU: type 0x09, plen 20, cid 7.
	return []byte{0x09, 0, 8, 0, 20, 0, 0, 0, 7, 0, 2, 0, 0, 0x10, 0, 0, 0, 0x10, 0, 0}
}
