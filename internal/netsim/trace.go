package netsim

import (
	"fmt"
	"strings"

	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/sim"
)

// Tracer records the protocol exchange on an endpoint: every transmitted
// and received message, decoded to its PDUs, with virtual timestamps. It
// is the transport-debugging tool one would build into a real NVMe-oF
// stack (SPDK's nvmf trace points); attach with Endpoint.AttachTracer.
type Tracer struct {
	// Name labels the traced endpoint.
	Name string
	// Limit bounds retained events (0 = 4096).
	Limit  int
	events []TraceEvent
}

// TraceEvent is one message in the trace.
type TraceEvent struct {
	At   sim.Time
	Dir  string // "tx" or "rx"
	PDUs []pdu.Type
	CIDs []uint16
	Wire int
}

// NewTracer creates a tracer with the default retention limit.
func NewTracer(name string) *Tracer { return &Tracer{Name: name} }

// record appends one event, decoding the message's PDUs.
func (t *Tracer) record(at sim.Time, dir string, msg *Message) {
	limit := t.Limit
	if limit <= 0 {
		limit = 4096
	}
	if len(t.events) >= limit {
		return
	}
	ev := TraceEvent{At: at, Dir: dir, Wire: msg.wireSize()}
	buf := msg.Data
	for len(buf) > 0 {
		p, n, err := pdu.Decode(buf)
		if err != nil {
			break
		}
		ev.PDUs = append(ev.PDUs, p.Type())
		ev.CIDs = append(ev.CIDs, pduCID(p))
		buf = buf[n:]
	}
	t.events = append(t.events, ev)
}

// pduCID extracts the command identifier a PDU refers to, if any.
func pduCID(p pdu.PDU) uint16 {
	switch v := p.(type) {
	case *pdu.CapsuleCmd:
		return v.Cmd.CID
	case *pdu.CapsuleResp:
		return v.Rsp.CID
	case *pdu.Data:
		return v.CID
	case *pdu.R2T:
		return v.CID
	case *pdu.SHMNotify:
		return v.CID
	case *pdu.SHMRelease:
		return v.CID
	default:
		return 0
	}
}

// Events returns the recorded events.
func (t *Tracer) Events() []TraceEvent { return t.events }

// String renders the trace, one line per message.
func (t *Tracer) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d messages)\n", t.Name, len(t.events))
	for _, ev := range t.events {
		fmt.Fprintf(&b, "  %10s %-2s %4dB ", ev.At, ev.Dir, ev.Wire)
		for i, p := range ev.PDUs {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%v(cid=%d)", p, ev.CIDs[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AttachTracer starts recording this endpoint's traffic.
func (ep *Endpoint) AttachTracer(t *Tracer) { ep.tracer = t }
