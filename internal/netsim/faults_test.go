package netsim

import (
	"testing"
	"time"

	"nvmeoaf/internal/sim"
)

// sendN transmits n fixed-size messages from A and receives them on B,
// returning the time the last one arrived.
func sendN(t *testing.T, e *sim.Engine, link *Link, n, size int) sim.Time {
	t.Helper()
	var last sim.Time
	e.Go("rx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			link.B.Recv(p)
		}
		last = p.Now()
	})
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			link.A.Send(p, &Message{Data: make([]byte, size)})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return last
}

func TestLossHealRestoresCleanDelivery(t *testing.T) {
	e := sim.NewEngine(7)
	link := NewLoopLink(e, flatParams(1e9, 5*time.Microsecond))
	if link.A.Loss() != 0 {
		t.Fatalf("default loss probability %v, want 0", link.A.Loss())
	}
	link.SetLoss(1.0, 100*time.Microsecond)
	link.SetLoss(0, 0) // burst healed before any traffic
	sendN(t, e, link, 200, 4096)
	if link.A.Retransmits != 0 || link.A.Drops != 0 {
		t.Fatalf("healed link recorded retransmits=%d drops=%d",
			link.A.Retransmits, link.A.Drops)
	}
}

func TestLossyLinkRecoversViaRTO(t *testing.T) {
	const n, size = 200, 4096
	run := func(prob float64) (sim.Time, int64) {
		e := sim.NewEngine(7)
		link := NewLoopLink(e, flatParams(1e9, 5*time.Microsecond))
		link.SetLoss(prob, 500*time.Microsecond)
		last := sendN(t, e, link, n, size)
		return last, link.A.Retransmits
	}
	cleanLast, cleanRetx := run(0)
	if cleanRetx != 0 {
		t.Fatalf("zero probability retransmitted %d times", cleanRetx)
	}
	lossyLast, lossyRetx := run(0.2)
	// Every message is eventually delivered (sendN received all n), the
	// loss is visible in the retransmit counter, and the RTO recovery
	// costs time.
	if lossyRetx == 0 {
		t.Fatal("20% loss produced no retransmits")
	}
	if lossyLast <= cleanLast {
		t.Fatalf("lossy run finished at %v, not later than clean run %v",
			lossyLast, cleanLast)
	}
	// Seed determinism: the same seed replays the same loss pattern.
	againLast, againRetx := run(0.2)
	if againLast != lossyLast || againRetx != lossyRetx {
		t.Fatalf("lossy run not reproducible: (%v,%d) vs (%v,%d)",
			lossyLast, lossyRetx, againLast, againRetx)
	}
}

func TestPartitionDropsThenHeals(t *testing.T) {
	e := sim.NewEngine(1)
	link := NewLoopLink(e, flatParams(1e9, 5*time.Microsecond))
	got := 0
	e.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			link.B.Recv(p)
		}
	})
	e.Go("tx", func(p *sim.Proc) {
		link.SetPartitioned(true)
		for i := 0; i < 10; i++ {
			link.A.Send(p, &Message{Data: make([]byte, 1000)})
		}
		if link.B.Pending() != 0 {
			t.Errorf("%d messages crossed a partitioned link", link.B.Pending())
		}
		link.SetPartitioned(false)
		for i := 0; i < 5; i++ {
			link.A.Send(p, &Message{Data: make([]byte, 1000)})
			got++
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if link.A.Drops != 10 {
		t.Fatalf("drops = %d, want 10", link.A.Drops)
	}
	if got != 5 {
		t.Fatalf("delivered %d post-heal messages, want 5", got)
	}
}

func TestExtraLatencyDelaysDelivery(t *testing.T) {
	run := func(extra time.Duration) sim.Time {
		e := sim.NewEngine(1)
		link := NewLoopLink(e, flatParams(1e9, 10*time.Microsecond))
		link.SetExtraLatency(extra)
		return sendN(t, e, link, 1, 1000)
	}
	base := run(0)
	spiked := run(500 * time.Microsecond)
	if want := base.Add(500 * time.Microsecond); spiked != want {
		t.Fatalf("spiked delivery at %v, want %v", spiked, want)
	}
}
