// Package netsim models the network paths between VMs: shared NIC wires,
// per-message host stack costs, propagation delay, and the receive-side
// interrupt/busy-poll behaviour that the paper's TCP-channel optimization
// tunes (§4.5).
//
// A message is real encoded bytes (a PDU). The time it takes to move is
// modeled in three stages: sender stack CPU, serialization through the
// sender's TX wire and the receiver's RX wire (both shared resources, so
// four streams on one 10 GbE NIC genuinely contend), and receiver stack
// CPU. Receivers in interrupt mode additionally pay a wakeup penalty when
// a message arrives while they are blocked.
package netsim

import (
	"math/rand"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
)

// Wire is a serialization resource: one direction of a NIC port. Multiple
// links can share a wire, in which case their messages contend for it in
// submission order.
type Wire struct {
	e           *sim.Engine
	bytesPerSec float64
	free        sim.Time
	// backlogCap bounds how far ahead of the clock the wire may be
	// booked before senders block (models TCP send-buffer backpressure:
	// kernel buffers autotune to several bandwidth-delay products under
	// deep-queue-depth NVMe/TCP load).
	backlogCap time.Duration

	// TxBytes counts all bytes serialized through this wire.
	TxBytes int64
}

// NewWire creates a wire with the given bandwidth in bytes per second.
func NewWire(e *sim.Engine, bytesPerSec float64) *Wire {
	return &Wire{e: e, bytesPerSec: bytesPerSec, backlogCap: 16 * time.Millisecond}
}

// serialize books size bytes onto the wire starting no earlier than t and
// returns the completion time.
func (w *Wire) serialize(t sim.Time, size int) sim.Time {
	start := t
	if w.free > start {
		start = w.free
	}
	dur := time.Duration(float64(size) / w.bytesPerSec * 1e9)
	w.free = start.Add(dur)
	w.TxBytes += int64(size)
	return w.free
}

// backlog returns how far the wire is booked past the current clock.
func (w *Wire) backlog() time.Duration {
	d := w.free.Sub(w.e.Now())
	if d < 0 {
		return 0
	}
	return d
}

// Message is one PDU in flight. Data holds the real encoded bytes; Wire is
// the size charged on the network (defaults to len(Data) when zero).
type Message struct {
	Data   []byte
	Wire   int
	SentAt sim.Time
}

// wireSize returns the byte count charged to the network.
func (m *Message) wireSize() int {
	if m.Wire > 0 {
		return m.Wire
	}
	return len(m.Data)
}

// Endpoint is one side of a link: it sends onto its TX wire and receives
// from its peer through a FIFO delivery queue.
type Endpoint struct {
	e      *sim.Engine
	params model.LinkParams
	tx     *Wire // our NIC's transmit wire
	rx     *Wire // our NIC's receive wire
	peer   *Endpoint
	inbox  *sim.Queue[*Message]

	// lossProb drops a transmitted segment with this probability; TCP
	// recovers it after rto. Zero (the default) disables loss, keeping
	// the paper's figures unaffected; tests use it to study congestion
	// tails.
	lossProb float64
	rto      time.Duration
	lossRng  *rand.Rand
	tracer   *Tracer
	// down simulates a network partition: transmissions are dropped
	// without delivery (and without RTO recovery — the path is gone).
	down bool
	// extraLatency is injected path latency (a congestion or reroute
	// spike) added to propagation on every transmission.
	extraLatency time.Duration
	// Retransmits counts recovered losses.
	Retransmits int64
	// Drops counts messages lost to a partition.
	Drops int64

	// OnDeliver, when set, runs in engine context each time a message is
	// delivered into this endpoint's inbox. Reactors use it to wake a
	// unified event loop that also serves submission queues.
	OnDeliver func()

	// Counters.
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
	Wakeups              int64 // interrupt-mode wakeups (penalty paid)
	PollHits, PollMisses int64 // busy-poll outcomes
}

// Link is a full-duplex path between two endpoints.
type Link struct {
	A, B *Endpoint
}

// NIC groups the two wires of one physical port.
type NIC struct {
	TX, RX *Wire
}

// NewNIC creates a NIC with symmetric bandwidth.
func NewNIC(e *sim.Engine, bytesPerSec float64) *NIC {
	return &NIC{TX: NewWire(e, bytesPerSec), RX: NewWire(e, bytesPerSec)}
}

// SetLoss enables random segment loss on this endpoint's transmissions,
// recovered by a retransmission timeout. Modeling only: a lost message is
// delivered after rto plus a fresh wire pass, as TCP's fast
// retransmit/RTO would.
func (ep *Endpoint) SetLoss(prob float64, rto time.Duration) {
	ep.lossProb = prob
	ep.rto = rto
	if ep.lossRng == nil {
		ep.lossRng = ep.e.Rand("netsim-loss")
	}
}

// Loss returns the current loss probability (zero = disabled).
func (ep *Endpoint) Loss() float64 { return ep.lossProb }

// SetDown partitions this endpoint's transmit path: messages are dropped
// without delivery until the partition heals. Unlike SetLoss there is no
// RTO recovery — a partition has no surviving path for the retransmit.
func (ep *Endpoint) SetDown(down bool) { ep.down = down }

// Down reports whether the endpoint's transmit path is partitioned.
func (ep *Endpoint) Down() bool { return ep.down }

// SetExtraLatency injects additional path latency (a congestion or
// reroute spike) into every subsequent transmission.
func (ep *Endpoint) SetExtraLatency(d time.Duration) { ep.extraLatency = d }

// SetLoss enables segment loss in both directions of the link.
func (l *Link) SetLoss(prob float64, rto time.Duration) {
	l.A.SetLoss(prob, rto)
	l.B.SetLoss(prob, rto)
}

// SetPartitioned partitions (or heals) both directions of the link.
func (l *Link) SetPartitioned(part bool) {
	l.A.SetDown(part)
	l.B.SetDown(part)
}

// SetExtraLatency injects path latency into both directions of the link.
func (l *Link) SetExtraLatency(d time.Duration) {
	l.A.SetExtraLatency(d)
	l.B.SetExtraLatency(d)
}

// NewLink connects two endpoints through the given NICs. For VMs on the
// same physical host with SR-IOV, pass the same NIC for both sides: the
// traffic hairpins through the port and both directions contend for it,
// exactly the single-host setup of the paper's §3.1 characterization.
func NewLink(e *sim.Engine, params model.LinkParams, nicA, nicB *NIC) *Link {
	a := &Endpoint{e: e, params: params, tx: nicA.TX, rx: nicA.RX, inbox: sim.NewQueue[*Message](e, 0)}
	b := &Endpoint{e: e, params: params, tx: nicB.TX, rx: nicB.RX, inbox: sim.NewQueue[*Message](e, 0)}
	a.peer, b.peer = b, a
	return &Link{A: a, B: b}
}

// NewLoopLink creates a link on a dedicated pair of NICs at the link
// parameters' wire speed, for tests and single-tenant setups.
func NewLoopLink(e *sim.Engine, params model.LinkParams) *Link {
	return NewLink(e, params, NewNIC(e, params.WireBytesPerSec), NewNIC(e, params.WireBytesPerSec))
}

// Params returns the link parameters of this endpoint.
func (ep *Endpoint) Params() model.LinkParams { return ep.params }

// Pending returns the number of delivered-but-unread messages.
func (ep *Endpoint) Pending() int { return ep.inbox.Len() }

// Send transmits msg to the peer endpoint. The calling process pays the
// sender-side stack cost and blocks if the TX wire is backlogged past its
// cap; wire serialization and propagation then proceed asynchronously.
func (ep *Endpoint) Send(p *sim.Proc, msg *Message) {
	size := msg.wireSize()
	msg.SentAt = p.Now()

	// Sender stack CPU (copy to socket buffer, segmentation, doorbell).
	p.Sleep(ep.params.PerMsgCPU + time.Duration(float64(size)*ep.params.PerByteCPUNanos))

	// Network partition: the message is transmitted but never delivered.
	// The sender still pays its stack cost — it cannot know the path died.
	if ep.down || ep.peer.down {
		ep.Drops++
		ep.MsgsSent++
		ep.BytesSent += int64(size)
		if ep.tracer != nil {
			ep.tracer.record(p.Now(), "drop", msg)
		}
		return
	}

	// Send-buffer backpressure.
	if over := ep.tx.backlog() - ep.tx.backlogCap; over > 0 {
		p.Sleep(over)
	}

	txDone := ep.tx.serialize(p.Now(), size)
	if ep.lossProb > 0 && ep.lossRng.Float64() < ep.lossProb {
		// Segment lost: the retransmission leaves after the RTO and pays
		// the wire again.
		ep.Retransmits++
		txDone = ep.tx.serialize(txDone.Add(ep.rto), size)
	}
	arrive := txDone.Add(ep.params.Propagation + ep.extraLatency)
	rxDone := ep.peer.rx.serialize(arrive, size)

	ep.MsgsSent++
	ep.BytesSent += int64(size)
	if ep.tracer != nil {
		ep.tracer.record(p.Now(), "tx", msg)
	}

	peer := ep.peer
	ep.e.At(rxDone, func() {
		peer.inbox.TryPut(msg)
		if peer.OnDeliver != nil {
			peer.OnDeliver()
		}
	})
}

// Recv blocks until a message arrives (interrupt mode). If the process had
// to block, the interrupt wakeup penalty is paid before the message is
// processed; the receive stack cost is always paid.
func (ep *Endpoint) Recv(p *sim.Proc) *Message {
	msg, ok := ep.inbox.TryGet()
	if !ok {
		msg, _ = ep.inbox.Get(p)
		ep.Wakeups++
		p.Sleep(ep.params.WakeupPenalty)
	}
	ep.finishRecv(p, msg)
	return msg
}

// RecvPoll busy-polls for up to budget. On a hit the message is processed
// with no wakeup penalty (the poll loop was already on-CPU). On a miss it
// returns nil and the caller decides whether to keep polling, do other
// work, or fall back to interrupt mode. The polling time itself elapses on
// the calling process — polling is not free, which is exactly the tradeoff
// Fig 10 explores.
func (ep *Endpoint) RecvPoll(p *sim.Proc, budget time.Duration) *Message {
	msg, ok := ep.inbox.GetTimeout(p, budget)
	if !ok {
		ep.PollMisses++
		return nil
	}
	ep.PollHits++
	ep.finishRecv(p, msg)
	return msg
}

// TryRecv returns an already-delivered message without blocking or
// polling.
func (ep *Endpoint) TryRecv(p *sim.Proc) *Message {
	msg, ok := ep.inbox.TryGet()
	if !ok {
		return nil
	}
	ep.finishRecv(p, msg)
	return msg
}

// ChargeWakeup records an interrupt-mode wakeup and charges its latency
// penalty to the calling process. Reactors that drain the inbox with
// TryRecv call this when a network delivery wakes them from idle.
func (ep *Endpoint) ChargeWakeup(p *sim.Proc) {
	ep.Wakeups++
	p.Sleep(ep.params.WakeupPenalty)
}

// finishRecv charges receiver stack costs and updates counters.
func (ep *Endpoint) finishRecv(p *sim.Proc, msg *Message) {
	size := msg.wireSize()
	p.Sleep(ep.params.PerMsgCPU + time.Duration(float64(size)*ep.params.PerByteCPUNanos))
	ep.MsgsRecv++
	ep.BytesRecv += int64(size)
	if ep.tracer != nil {
		ep.tracer.record(p.Now(), "rx", msg)
	}
}
