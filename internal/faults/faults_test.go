package faults

import (
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
)

// fakeCrashable records crash/restart transitions.
type fakeCrashable struct{ crashes, restarts int }

func (f *fakeCrashable) Crash()   { f.crashes++ }
func (f *fakeCrashable) Restart() { f.restarts++ }

// runSchedule applies a representative schedule of every fault kind and
// returns the injector's log.
func runSchedule(t *testing.T, seed int64) []Event {
	t.Helper()
	e := sim.NewEngine(seed)
	link := netsim.NewLoopLink(e, model.LinkParams{Name: "t", WireBytesPerSec: 1e9})
	region, err := shm.NewRegion(e, 9, 4096, 4, model.DefaultSHM(), shm.ModeLockFree, shm.ClaimRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	srv := &fakeCrashable{}
	inj := NewInjector(e)
	ms := time.Millisecond
	inj.LossBurst(link, 1*ms+inj.Jitter(ms), 2*ms, 0.3, 500*time.Microsecond)
	inj.LatencySpike(link, 2*ms+inj.Jitter(ms), 1*ms, 200*time.Microsecond)
	inj.Partition(link, 5*ms+inj.Jitter(ms), 1*ms)
	inj.CrashTarget(srv, 8*ms+inj.Jitter(ms), 2*ms)
	inj.RevokeRegion(region, 12*ms+inj.Jitter(ms))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.crashes != 1 || srv.restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", srv.crashes, srv.restarts)
	}
	if !region.Revoked() {
		t.Fatal("region not revoked")
	}
	if link.A.Down() || link.A.Loss() != 0 {
		t.Fatal("link not healed at end of schedule")
	}
	return inj.Log
}

func TestScheduleAppliesAndLogsInOrder(t *testing.T) {
	log := runSchedule(t, 42)
	// 2 events per windowed fault (4 of them) + 2 for crash/restart... the
	// crash pair is windowed too; revoke is a single event.
	if want := 2 + 2 + 2 + 2 + 1; len(log) != want {
		t.Fatalf("log has %d events, want %d: %v", len(log), want, log)
	}
	for i := 1; i < len(log); i++ {
		if log[i].At.Sub(log[i-1].At) < 0 {
			t.Fatalf("log out of order: %v before %v", log[i-1], log[i])
		}
	}
	kinds := map[string]int{}
	for _, ev := range log {
		kinds[ev.Kind]++
	}
	for _, k := range []string{"loss-burst", "loss-heal", "latency-spike", "latency-heal",
		"partition", "partition-heal", "target-crash", "target-restart", "shm-revoke"} {
		if kinds[k] == 0 {
			t.Errorf("kind %q missing from log", k)
		}
	}
}

func TestScheduleIsSeedReproducible(t *testing.T) {
	a := runSchedule(t, 42)
	b := runSchedule(t, 42)
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed moves the jittered schedule points.
	c := runSchedule(t, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical jittered schedule")
	}
}
