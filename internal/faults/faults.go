// Package faults is the deterministic fault-injection subsystem of the
// adaptive fabric. An Injector schedules failure events — link-loss
// bursts, latency spikes, network partitions, target crash/restart, and
// shared-memory region revocation — at virtual times on the simulation
// engine. Because the engine's event queue is FIFO at equal timestamps
// and every random stream derives from the engine seed, a fault schedule
// replays bit-identically for a given seed: chaos runs are reproducible
// experiments, not flaky tests.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
)

// Crashable is a target-side server that can crash (dropping every
// connection and all in-flight state) and later restart listening.
type Crashable interface {
	Crash()
	Restart()
}

// Event records one applied fault for introspection and determinism
// checks. The JSON form rides cluster snapshots so post-mortems can
// correlate telemetry dips with the faults that caused them.
type Event struct {
	At     sim.Time `json:"at_ns"`
	Kind   string   `json:"kind"`
	Detail string   `json:"detail,omitempty"`
}

func (ev Event) String() string {
	return fmt.Sprintf("%v %s %s", ev.At, ev.Kind, ev.Detail)
}

// Injector schedules fault events on one engine and logs each
// application.
type Injector struct {
	e   *sim.Engine
	rng *rand.Rand

	// Log holds every applied event in application order.
	Log []Event
}

// NewInjector creates an injector on e. Its jitter stream derives from
// the engine seed, so randomized schedules reproduce per seed.
func NewInjector(e *sim.Engine) *Injector {
	return &Injector{e: e, rng: e.Rand("faults")}
}

// record appends to the log at the current virtual time.
func (in *Injector) record(kind, detail string) {
	in.Log = append(in.Log, Event{At: in.e.Now(), Kind: kind, Detail: detail})
}

// at schedules an applied+logged fault at now+d.
func (in *Injector) at(d time.Duration, kind, detail string, apply func()) {
	in.e.After(d, func() {
		in.record(kind, detail)
		apply()
	})
}

// Jitter returns a deterministic random duration in [0, max), for
// spreading schedule points without losing reproducibility.
func (in *Injector) Jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(in.rng.Int63n(int64(max)))
}

// LossBurst makes the link lossy (recovered by RTO retransmission) for
// the window [at, at+dur).
func (in *Injector) LossBurst(l *netsim.Link, at, dur time.Duration, prob float64, rto time.Duration) {
	in.at(at, "loss-burst", fmt.Sprintf("prob=%.2f rto=%v dur=%v", prob, rto, dur),
		func() { l.SetLoss(prob, rto) })
	in.at(at+dur, "loss-heal", "", func() { l.SetLoss(0, 0) })
}

// LatencySpike adds extra path latency to the link for the window
// [at, at+dur).
func (in *Injector) LatencySpike(l *netsim.Link, at, dur, extra time.Duration) {
	in.at(at, "latency-spike", fmt.Sprintf("extra=%v dur=%v", extra, dur),
		func() { l.SetExtraLatency(extra) })
	in.at(at+dur, "latency-heal", "", func() { l.SetExtraLatency(0) })
}

// Partition cuts the link both ways for the window [at, at+dur):
// messages in that window are dropped with no recovery.
func (in *Injector) Partition(l *netsim.Link, at, dur time.Duration) {
	in.at(at, "partition", fmt.Sprintf("dur=%v", dur), func() { l.SetPartitioned(true) })
	in.at(at+dur, "partition-heal", "", func() { l.SetPartitioned(false) })
}

// CrashTarget crashes srv at the given time and restarts it downFor
// later. A crash drops every connection and all in-flight target state;
// clients recover through timeouts, retries, and reconnect.
func (in *Injector) CrashTarget(srv Crashable, at, downFor time.Duration) {
	in.at(at, "target-crash", fmt.Sprintf("down=%v", downFor), srv.Crash)
	in.at(at+downFor, "target-restart", "", srv.Restart)
}

// RevokeRegion tears down the shared-memory mapping at the given time,
// as a VM migration would: in-flight shared-memory transfers fail with
// typed errors and both sides fail over to the TCP data path.
func (in *Injector) RevokeRegion(r *shm.Region, at time.Duration) {
	in.at(at, "shm-revoke", fmt.Sprintf("key=%d", r.Key), r.Revoke)
}
