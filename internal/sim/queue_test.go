package sim

import (
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	var got []int
	e.Go("prod", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
		}
	})
	e.Go("cons", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Errorf("queue closed early")
			}
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestBoundedQueueBlocksProducer(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 2)
	var thirdPutAt Time
	e.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until consumer drains one
		thirdPutAt = p.Now()
	})
	e.Go("cons", func(p *Proc) {
		p.Sleep(50 * time.Microsecond)
		q.Get(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if thirdPutAt != Time(50*time.Microsecond) {
		t.Fatalf("third put completed at %v, want 50us", thirdPutAt)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	e.Go("cons", func(p *Proc) {
		_, ok := q.GetTimeout(p, 25*time.Microsecond)
		if ok {
			t.Error("expected timeout")
		}
		if p.Now() != Time(25*time.Microsecond) {
			t.Errorf("timed out at %v, want 25us", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueGetTimeoutWinsRace(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	e.Go("prod", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		q.Put(p, 99)
	})
	e.Go("cons", func(p *Proc) {
		v, ok := q.GetTimeout(p, 25*time.Microsecond)
		if !ok || v != 99 {
			t.Errorf("got (%d,%v), want (99,true)", v, ok)
		}
		// A second get must observe the timeout, not a stale wakeup.
		_, ok = q.GetTimeout(p, 5*time.Microsecond)
		if ok {
			t.Error("expected timeout on second get")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty should fail")
	}
	if !q.TryPut(7) {
		t.Fatal("TryPut on empty bounded queue should succeed")
	}
	if q.TryPut(8) {
		t.Fatal("TryPut on full queue should fail")
	}
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Fatalf("TryGet = (%d,%v)", v, ok)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	var got []int
	var sawClose bool
	e.Go("cons", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				sawClose = true
				return
			}
			got = append(got, v)
		}
	})
	e.Go("prod", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		p.Sleep(time.Microsecond)
		q.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawClose || len(got) != 2 {
		t.Fatalf("got %v, sawClose=%v", got, sawClose)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(e, 2)
	inFlight, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("worker", func(p *Proc) {
			s.Acquire(p)
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			p.Sleep(10 * time.Microsecond)
			inFlight--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2", peak)
	}
	if e.Now() != Time(30*time.Microsecond) {
		t.Fatalf("finished at %v, want 30us (3 waves of 10us)", e.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(e, 1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	s.Release()
	if s.Available() != 1 {
		t.Fatalf("available = %d", s.Available())
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	sig := NewSignal(e)
	woke := 0
	for i := 0; i < 4; i++ {
		e.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		sig.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	sig := NewSignal(e)
	e.Go("waiter", func(p *Proc) {
		if sig.WaitTimeout(p, 10*time.Microsecond) {
			t.Error("expected timeout")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFutureResolve(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[string](e)
	if _, ok := f.Value(); ok {
		t.Fatal("unresolved future should have no value")
	}
	e.Go("waiter", func(p *Proc) {
		if got := f.Wait(p); got != "done" {
			t.Errorf("got %q", got)
		}
	})
	e.Go("resolver", func(p *Proc) {
		p.Sleep(time.Microsecond)
		f.Resolve("done")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if v, ok := f.Value(); !ok || v != "done" {
		t.Fatalf("Value = (%q,%v)", v, ok)
	}
}

func TestFutureDoubleResolvePanics(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	e.Go("bad", func(p *Proc) {
		f.Resolve(1)
		f.Resolve(2)
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected panic error from double resolve")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * 10 * time.Microsecond
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go("main", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != Time(30*time.Microsecond) {
		t.Fatalf("wait released at %v, want 30us", doneAt)
	}
}

func TestWaitGroupReuse(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	e.Go("main", func(p *Proc) {
		for round := 0; round < 3; round++ {
			wg.Add(2)
			for i := 0; i < 2; i++ {
				e.Go("w", func(c *Proc) {
					c.Sleep(time.Microsecond)
					wg.Done()
				})
			}
			wg.Wait(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
