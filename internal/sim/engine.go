// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel provides a virtual clock, an event queue, and a cooperative
// process model: each process is a real goroutine, but exactly one process
// runs at a time and control is handed back to the engine whenever the
// process blocks (Sleep, queue operations, semaphores, ...). Events with
// equal timestamps fire in scheduling (FIFO) order, so every run is
// bit-reproducible for a given seed.
//
// All NVMe-oAF subsystems (links, SSDs, transports, reactors) are built as
// processes on this kernel. Real bytes move through real data structures;
// only time is virtual, which gives microsecond-exact, GC-independent
// measurements that Go's wall-clock timers cannot provide at this scale.
//
// Lifecycle note: daemon processes (GoDaemon) that are still parked when
// the event queue drains remain blocked on their wake channels for the
// life of the host process. An engine is therefore meant to be used for
// one simulation run and then dropped; the parked goroutines hold only
// their (small) stacks and are reclaimed when the process exits. Tests
// and benchmarks that create thousands of engines stay well under normal
// memory budgets.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation.
type Time int64

// MaxTime is the largest representable virtual timestamp.
const MaxTime = Time(1<<62 - 1)

// Nanoseconds returns the timestamp as an integer nanosecond count.
func (t Time) Nanoseconds() int64 { return int64(t) }

// Seconds returns the timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns the timestamp in microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Add returns the timestamp shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between two timestamps.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", float64(t)/1e3) }

// waitToken arbitrates between competing wakeup paths (for example a queue
// Put and a timeout timer) for one blocked process. The first path to fire
// consumes the token; the loser is skipped when its event pops.
type waitToken struct {
	consumed bool
	timedOut bool
}

// event is a single entry in the engine's priority queue. Either wake or fn
// is set: wake resumes a blocked process, fn runs a callback inline.
type event struct {
	at      Time
	seq     uint64
	wake    *Proc
	tok     *waitToken
	timeout bool
	fn      func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the event queue and drives all
// processes. Exactly one flow of control is active at any instant: either
// the engine loop or a single process goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{}
	cur    *Proc
	live   int
	parked map[*Proc]struct{}
	seed   int64
	err    error
	fatal  bool
}

// NewEngine returns an engine with its clock at zero. The seed drives every
// random stream derived via Rand, so runs are reproducible per seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
		seed:   seed,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns a deterministic random stream derived from the engine seed
// and the stream name. Distinct names yield independent streams, so adding
// a new consumer does not perturb existing ones.
func (e *Engine) Rand(stream string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprint(h, stream)
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
}

// schedule inserts an event at absolute time t (clamped to now).
func (e *Engine) schedule(t Time, ev *event) {
	if t < e.now {
		t = e.now
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// After schedules fn to run at Now()+d. fn executes in engine context; it
// may spawn processes or schedule further events but must not block.
func (e *Engine) After(d time.Duration, fn func()) {
	e.schedule(e.now.Add(d), &event{fn: fn})
}

// At schedules fn at the absolute virtual time t (or now, if t is past).
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, &event{fn: fn})
}

// Go spawns a new process running fn. The process starts at the current
// virtual time, after already-scheduled events at this time fire.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// GoDaemon spawns a background service process (device channel servers,
// connection reactors). Daemons parked with no pending events do not
// trigger the deadlock check: an idle server is not a hung simulation.
func (e *Engine) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{
		engine: e,
		name:   name,
		wake:   make(chan struct{}),
		daemon: daemon,
	}
	e.live++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if e.err == nil {
					e.err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
				e.fatal = true
			}
			p.done = true
			e.live--
			for _, w := range p.joiners {
				e.wakeWaiter(w)
			}
			p.joiners = nil
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(e.now, &event{wake: p})
	return p
}

// wakeWaiter consumes a wait token (if not already consumed) and schedules
// the owning process to resume at the current time. It reports whether the
// token was won.
func (e *Engine) wakeWaiter(w *blocked) bool {
	if w.tok.consumed {
		return false
	}
	w.tok.consumed = true
	delete(e.parked, w.p)
	e.schedule(e.now, &event{wake: w.p})
	return true
}

// blocked records one parked process together with its arbitration token.
type blocked struct {
	p   *Proc
	tok *waitToken
}

// Run drives the simulation until no events remain or a process panics. It
// returns an error for panics and for deadlock (processes parked forever).
func (e *Engine) Run() error { return e.RunUntil(MaxTime) }

// RunUntil drives the simulation until the event queue is exhausted or the
// next event lies beyond the limit; in the latter case the clock is set to
// the limit and no deadlock check is performed.
func (e *Engine) RunUntil(limit Time) error {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.at > limit {
			e.now = limit
			return e.err
		}
		e.now = ev.at
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.wake != nil:
			if ev.wake.done {
				continue
			}
			if ev.tok != nil {
				if ev.tok.consumed {
					continue // lost the race against another waker
				}
				ev.tok.consumed = true
				ev.tok.timedOut = ev.timeout
				delete(e.parked, ev.wake)
			}
			e.resume(ev.wake)
			if e.fatal {
				return e.err
			}
		}
	}
	var stuck []string
	for p := range e.parked {
		if !p.daemon {
			stuck = append(stuck, p.name)
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock: %d process(es) parked with no pending events: %v", len(stuck), stuck)
	}
	return e.err
}

// resume hands control to p and blocks until p yields back.
func (e *Engine) resume(p *Proc) {
	e.cur = p
	p.wake <- struct{}{}
	<-e.yield
	e.cur = nil
}

// Live reports the number of processes that have been spawned and not yet
// finished.
func (e *Engine) Live() int { return e.live }

// Err returns the first process panic recorded, if any.
func (e *Engine) Err() error { return e.err }
