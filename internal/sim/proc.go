package sim

import "time"

// Proc is a simulation process: a goroutine that runs cooperatively under
// the engine. Blocking methods (Sleep, and the queue/semaphore operations
// that take a *Proc) suspend the goroutine and return control to the engine
// until the wakeup condition fires.
//
// A Proc must only be used from its own goroutine (the function passed to
// Engine.Go).
type Proc struct {
	engine  *Engine
	name    string
	wake    chan struct{}
	done    bool
	daemon  bool
	joiners []*blocked
}

// Daemon reports whether this is a background service process.
func (p *Proc) Daemon() bool { return p.daemon }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.engine }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.engine.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// block yields control to the engine and waits to be resumed.
func (p *Proc) block() {
	p.engine.yield <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for the given virtual duration. Non-positive
// durations yield the processor: the process re-runs at the same timestamp
// after already-pending events.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.engine.schedule(p.engine.now.Add(d), &event{wake: p})
	p.block()
}

// Yield reschedules the process at the current timestamp behind all events
// already queued for this instant.
func (p *Proc) Yield() { p.Sleep(0) }

// park suspends the process until another party wins its wait token via
// Engine.wakeWaiter. If timeout is positive a timer competes for the token;
// park reports true if the timer won (the wait timed out). A non-positive
// timeout parks indefinitely.
func (p *Proc) park(tok *waitToken, timeout time.Duration) (timedOut bool) {
	if timeout > 0 {
		p.engine.schedule(p.engine.now.Add(timeout), &event{wake: p, tok: tok, timeout: true})
	} else {
		p.engine.parked[p] = struct{}{}
	}
	p.block()
	return tok.timedOut
}

// Join blocks until q has finished. Joining a finished process returns
// immediately.
func (p *Proc) Join(q *Proc) {
	if q.done {
		return
	}
	w := &blocked{p: p, tok: &waitToken{}}
	q.joiners = append(q.joiners, w)
	p.park(w.tok, 0)
}

// JoinAll blocks until every process in qs has finished.
func (p *Proc) JoinAll(qs ...*Proc) {
	for _, q := range qs {
		p.Join(q)
	}
}
