package sim

import "time"

// Semaphore is a counted semaphore with FIFO wakeup among blocked
// acquirers.
type Semaphore struct {
	e       *Engine
	permits int
	waiters []*blocked
}

// NewSemaphore creates a semaphore holding the given number of permits.
func NewSemaphore(e *Engine, permits int) *Semaphore {
	return &Semaphore{e: e, permits: permits}
}

// Acquire takes one permit, blocking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.permits <= 0 {
		w := &blocked{p: p, tok: &waitToken{}}
		s.waiters = append(s.waiters, w)
		p.park(w.tok, 0)
	}
	s.permits--
}

// TryAcquire takes one permit without blocking; it reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.permits <= 0 {
		return false
	}
	s.permits--
	return true
}

// Release returns one permit and wakes a blocked acquirer, if any.
func (s *Semaphore) Release() {
	s.permits++
	wakeOne(s.e, &s.waiters)
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.permits }

// Signal is a broadcast condition: processes Wait until Fire is called,
// after which the signal stays fired (level-triggered) until Reset.
type Signal struct {
	e       *Engine
	fired   bool
	waiters []*blocked
}

// NewSignal creates an unfired signal.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks until the signal fires. Returns immediately if already
// fired. Each Wait parks at most once: a wakeup always corresponds to a
// Fire call, even if the signal was Reset again before the waiter resumed
// (edge-triggered wakeup, level-triggered fast path).
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	w := &blocked{p: p, tok: &waitToken{}}
	s.waiters = append(s.waiters, w)
	p.park(w.tok, 0)
}

// WaitTimeout is Wait with a deadline; it reports whether the signal fired
// (false = timed out). A non-positive timeout blocks indefinitely.
func (s *Signal) WaitTimeout(p *Proc, timeout time.Duration) bool {
	if s.fired {
		return true
	}
	if timeout <= 0 {
		s.Wait(p)
		return true
	}
	w := &blocked{p: p, tok: &waitToken{}}
	s.waiters = append(s.waiters, w)
	return !p.park(w.tok, timeout)
}

// Fire fires the signal, waking all waiters. Idempotent.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	wakeAll(s.e, &s.waiters)
}

// Reset returns a fired signal to the unfired state.
func (s *Signal) Reset() { s.fired = false }

// Future carries a single value set exactly once; processes can block until
// it resolves. It is the simulation analogue of a one-shot channel.
type Future[T any] struct {
	sig       *Signal
	val       T
	callbacks []func(T)
}

// NewFuture creates an unresolved future.
func NewFuture[T any](e *Engine) *Future[T] {
	return &Future[T]{sig: NewSignal(e)}
}

// Resolve sets the value, wakes all waiters, and runs registered
// callbacks. Resolving twice panics.
func (f *Future[T]) Resolve(v T) {
	if f.sig.Fired() {
		panic("sim: Future resolved twice")
	}
	f.val = v
	f.sig.Fire()
	for _, cb := range f.callbacks {
		cb(v)
	}
	// Truncate rather than nil: a renewed future re-registers callbacks
	// into the retained capacity, keeping recycled futures allocation-free.
	f.callbacks = f.callbacks[:0]
}

// Renew re-arms a RESOLVED future for reuse, dropping its value and
// callbacks. It exists for pools that recycle futures on a hot path
// (the ring layer) instead of allocating one per operation; renewing an
// unresolved future panics, since waiters may still be parked on it.
func (f *Future[T]) Renew() {
	if !f.sig.Fired() {
		panic("sim: Renew on unresolved Future")
	}
	f.sig.Reset()
	var zero T
	f.val = zero
	f.callbacks = f.callbacks[:0]
}

// OnResolve registers fn to run when the future resolves (immediately if
// already resolved). fn runs in the resolver's context and must not
// block.
func (f *Future[T]) OnResolve(fn func(T)) {
	if f.sig.Fired() {
		fn(f.val)
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// Resolved reports whether the future carries a value.
func (f *Future[T]) Resolved() bool { return f.sig.Fired() }

// Wait blocks until the future resolves and returns its value.
func (f *Future[T]) Wait(p *Proc) T {
	f.sig.Wait(p)
	return f.val
}

// WaitTimeout is Wait with a deadline: ok is false when the deadline
// passed before the future resolved (the future stays valid and may
// still resolve later). A non-positive timeout blocks indefinitely.
func (f *Future[T]) WaitTimeout(p *Proc, timeout time.Duration) (v T, ok bool) {
	if !f.sig.WaitTimeout(p, timeout) {
		var zero T
		return zero, false
	}
	return f.val, true
}

// Value returns the value without blocking; ok is false if unresolved.
func (f *Future[T]) Value() (v T, ok bool) {
	if !f.sig.Fired() {
		return v, false
	}
	return f.val, true
}

// WaitGroup waits for a collection of processes or operations to finish.
type WaitGroup struct {
	e     *Engine
	count int
	sig   *Signal
}

// NewWaitGroup creates a wait group with a zero count.
func NewWaitGroup(e *Engine) *WaitGroup {
	return &WaitGroup{e: e, sig: NewSignal(e)}
}

// Add increments the pending-operation count by n (n may be negative, as
// with sync.WaitGroup; Done is Add(-1)).
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		w.sig.Fire()
		w.sig.Reset()
	}
}

// Done decrements the pending-operation count.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the count reaches zero. A zero count returns
// immediately.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.sig.Wait(p)
	}
}
