package sim

import (
	"testing"
	"time"
)

func TestClockAdvancesWithSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Microsecond)
		wake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != Time(42*time.Microsecond) {
		t.Fatalf("woke at %v, want 42us", wake)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(30*time.Microsecond, func() { order = append(order, 3) })
	e.After(10*time.Microsecond, func() { order = append(order, 1) })
	e.After(20*time.Microsecond, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEqualTimestampsFireFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Microsecond, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine(1)
	total := 0
	e.Go("parent", func(p *Proc) {
		for i := 0; i < 5; i++ {
			e.Go("child", func(c *Proc) {
				c.Sleep(time.Microsecond)
				total++
			})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
}

func TestJoinWaitsForChild(t *testing.T) {
	e := NewEngine(1)
	var joined Time
	e.Go("parent", func(p *Proc) {
		child := e.Go("child", func(c *Proc) { c.Sleep(100 * time.Microsecond) })
		p.Join(child)
		joined = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != Time(100*time.Microsecond) {
		t.Fatalf("joined at %v, want 100us", joined)
	}
}

func TestJoinFinishedProcReturnsImmediately(t *testing.T) {
	e := NewEngine(1)
	e.Go("parent", func(p *Proc) {
		child := e.Go("child", func(c *Proc) {})
		p.Sleep(time.Millisecond)
		start := p.Now()
		p.Join(child)
		if p.Now() != start {
			t.Errorf("join of finished child advanced time")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	e := NewEngine(1)
	e.Go("boom", func(p *Proc) {
		p.Sleep(time.Microsecond)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected panic error")
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	e.Go("starved", func(p *Proc) {
		q.Get(p) // nobody ever puts
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(time.Millisecond)
			n++
		}
	})
	if err := e.RunUntil(Time(10*time.Millisecond + time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
	if e.Now() != Time(10*time.Millisecond+time.Microsecond) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestRandStreamsIndependentAndReproducible(t *testing.T) {
	a1 := NewEngine(7).Rand("a").Int63()
	a2 := NewEngine(7).Rand("a").Int63()
	b := NewEngine(7).Rand("b").Int63()
	if a1 != a2 {
		t.Fatal("same seed+stream should reproduce")
	}
	if a1 == b {
		t.Fatal("different streams should differ")
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := NewEngine(3)
		var log []string
		q := NewQueue[string](e, 2)
		for i, name := range []string{"a", "b", "c"} {
			name := name
			d := time.Duration(i) * 10 * time.Microsecond
			e.Go("prod-"+name, func(p *Proc) {
				p.Sleep(d)
				for j := 0; j < 3; j++ {
					q.Put(p, name)
					p.Sleep(7 * time.Microsecond)
				}
			})
		}
		e.Go("cons", func(p *Proc) {
			for i := 0; i < 9; i++ {
				v, _ := q.Get(p)
				log = append(log, v)
				p.Sleep(5 * time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 3; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, first, again)
			}
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1500)
	if tm.Add(500).Nanoseconds() != 2000 {
		t.Fatal("Add")
	}
	if tm.Sub(Time(500)) != 1000*time.Nanosecond {
		t.Fatal("Sub")
	}
	if Time(2e3).Micros() != 2 {
		t.Fatal("Micros")
	}
	if Time(3e9).Seconds() != 3 {
		t.Fatal("Seconds")
	}
}

// BenchmarkEngineEventThroughput measures the kernel's raw event rate:
// how many process wake/sleep handoffs per second the simulator sustains.
func BenchmarkEngineEventThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		const procs, ticks = 8, 2000
		for j := 0; j < procs; j++ {
			e.Go("ticker", func(p *Proc) {
				for k := 0; k < ticks; k++ {
					p.Sleep(time.Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(procs*ticks), "events/op")
	}
}
