package sim

import "time"

// Queue is a FIFO channel analogue for simulation processes. A zero
// capacity means unbounded. Get blocks while the queue is empty; Put blocks
// while a bounded queue is full. Wakeups are FIFO among waiters.
type Queue[T any] struct {
	e       *Engine
	items   []T
	cap     int
	getters []*blocked
	putters []*blocked
	closed  bool
}

// NewQueue creates a queue on engine e with the given capacity
// (0 = unbounded).
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{e: e, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// wakeOne resumes the first waiter whose token is still live.
func wakeOne(e *Engine, list *[]*blocked) {
	for len(*list) > 0 {
		w := (*list)[0]
		*list = (*list)[1:]
		if e.wakeWaiter(w) {
			return
		}
	}
}

// wakeAll resumes every live waiter in the list.
func wakeAll(e *Engine, list *[]*blocked) {
	for len(*list) > 0 {
		w := (*list)[0]
		*list = (*list)[1:]
		e.wakeWaiter(w)
	}
}

// Put appends v, blocking while a bounded queue is full. Putting to a
// closed queue panics.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		if q.closed {
			panic("sim: Put on closed queue")
		}
		w := &blocked{p: p, tok: &waitToken{}}
		q.putters = append(q.putters, w)
		p.park(w.tok, 0)
	}
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, v)
	wakeOne(q.e, &q.getters)
}

// TryPut appends v without blocking; it reports whether the item was
// accepted.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || (q.cap > 0 && len(q.items) >= q.cap) {
		return false
	}
	q.items = append(q.items, v)
	wakeOne(q.e, &q.getters)
	return true
}

// Get removes and returns the head item, blocking while the queue is
// empty. ok is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		w := &blocked{p: p, tok: &waitToken{}}
		q.getters = append(q.getters, w)
		p.park(w.tok, 0)
	}
	v = q.items[0]
	q.items = q.items[1:]
	wakeOne(q.e, &q.putters)
	return v, true
}

// GetTimeout is Get with a deadline: ok is false on timeout or on a closed,
// drained queue. A non-positive timeout blocks indefinitely.
func (q *Queue[T]) GetTimeout(p *Proc, timeout time.Duration) (v T, ok bool) {
	if timeout <= 0 {
		return q.Get(p)
	}
	deadline := q.e.now.Add(timeout)
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		remain := deadline.Sub(q.e.now)
		if remain <= 0 {
			return v, false
		}
		w := &blocked{p: p, tok: &waitToken{}}
		q.getters = append(q.getters, w)
		if p.park(w.tok, remain) {
			return v, false
		}
	}
	v = q.items[0]
	q.items = q.items[1:]
	wakeOne(q.e, &q.putters)
	return v, true
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	wakeOne(q.e, &q.putters)
	return v, true
}

// Close marks the queue closed: blocked and future getters drain remaining
// items and then receive ok=false. Close is idempotent.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	wakeAll(q.e, &q.getters)
	wakeAll(q.e, &q.putters)
}
