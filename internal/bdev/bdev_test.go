package bdev

import (
	"errors"
	"testing"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/ssd"
)

func calm() model.SSDParams {
	p := model.DefaultSSD()
	p.JitterFrac = 0
	p.StallProb = 0
	return p
}

func TestSSDBdevGeometry(t *testing.T) {
	e := sim.NewEngine(1)
	b := NewSimSSD(e, "d0", 1<<20, calm(), false, 512)
	if b.Name() != "d0" || b.BlockSize() != 512 || b.Blocks() != (1<<20)/512 {
		t.Fatalf("geometry: %s %d %d", b.Name(), b.BlockSize(), b.Blocks())
	}
	if b.SSD() == nil {
		t.Fatal("missing underlying device")
	}
}

func TestBadBlockSizePanics(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned capacity accepted")
		}
	}()
	NewSimSSD(e, "d0", 1000, calm(), false, 512) // 1000 % 512 != 0
}

func TestSubmitThroughBdev(t *testing.T) {
	e := sim.NewEngine(1)
	b := NewSimSSD(e, "d0", 1<<20, calm(), false, 512)
	e.Go("io", func(p *sim.Proc) {
		res := b.Submit(&ssd.Request{Op: ssd.OpRead, Offset: 0, Size: 4096}).Wait(p)
		if res.Err != nil {
			t.Error(res.Err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.SSD().ReadOps != 1 {
		t.Fatalf("read ops %d", b.SSD().ReadOps)
	}
}

func TestFaultyBdevPeriodicity(t *testing.T) {
	e := sim.NewEngine(1)
	inner := NewSimSSD(e, "d0", 1<<20, calm(), false, 512)
	f := NewFaulty(e, inner, 4, errors.New("boom"))
	fails := 0
	e.Go("io", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			res := f.Submit(&ssd.Request{Op: ssd.OpRead, Offset: 0, Size: 512}).Wait(p)
			if res.Err != nil {
				fails++
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fails != 3 {
		t.Fatalf("failures %d, want 3 (every 4th of 12)", fails)
	}
	// Geometry passes through the wrapper.
	if f.BlockSize() != 512 || f.Blocks() != inner.Blocks() {
		t.Fatal("wrapper geometry mismatch")
	}
}

func TestFaultyDisabledWhenEveryZero(t *testing.T) {
	e := sim.NewEngine(1)
	inner := NewSimSSD(e, "d0", 1<<20, calm(), false, 512)
	f := NewFaulty(e, inner, 0, errors.New("boom"))
	e.Go("io", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if res := f.Submit(&ssd.Request{Op: ssd.OpRead, Offset: 0, Size: 512}).Wait(p); res.Err != nil {
				t.Error("injection should be disabled")
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
