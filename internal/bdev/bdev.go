// Package bdev provides the block-device abstraction between the NVMe-oF
// target's namespaces and the backing storage, mirroring SPDK's bdev
// layer. The primary implementation wraps the simulated NVMe SSD; a
// fault-injecting wrapper supports failure testing.
package bdev

import (
	"fmt"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/ssd"
)

// Device is the target-side block device interface.
type Device interface {
	// Name identifies the device.
	Name() string
	// BlockSize returns the logical block size in bytes.
	BlockSize() int
	// Blocks returns the number of logical blocks.
	Blocks() int64
	// Submit issues a request and returns a future resolved on completion.
	Submit(req *ssd.Request) *sim.Future[ssd.Result]
}

// SSDBdev adapts a simulated NVMe SSD to the bdev interface.
type SSDBdev struct {
	dev       *ssd.Device
	blockSize int
}

// NewSSD wraps an ssd.Device with the given logical block size.
func NewSSD(dev *ssd.Device, blockSize int) *SSDBdev {
	if blockSize <= 0 || dev.Capacity%int64(blockSize) != 0 {
		panic(fmt.Sprintf("bdev: capacity %d not a multiple of block size %d", dev.Capacity, blockSize))
	}
	return &SSDBdev{dev: dev, blockSize: blockSize}
}

// NewSimSSD creates a fresh simulated SSD and wraps it.
func NewSimSSD(e *sim.Engine, name string, capacity int64, params model.SSDParams, retainData bool, blockSize int) *SSDBdev {
	return NewSSD(ssd.New(e, name, capacity, params, retainData), blockSize)
}

// Name implements Device.
func (b *SSDBdev) Name() string { return b.dev.Name }

// BlockSize implements Device.
func (b *SSDBdev) BlockSize() int { return b.blockSize }

// Blocks implements Device.
func (b *SSDBdev) Blocks() int64 { return b.dev.Capacity / int64(b.blockSize) }

// Submit implements Device.
func (b *SSDBdev) Submit(req *ssd.Request) *sim.Future[ssd.Result] { return b.dev.Submit(req) }

// SSD exposes the underlying simulated device for metrics.
func (b *SSDBdev) SSD() *ssd.Device { return b.dev }

// FaultyBdev wraps a device and fails every Nth submission with the given
// error, for failure-injection tests.
type FaultyBdev struct {
	Device
	Every int
	Err   error
	e     *sim.Engine
	count int
}

// NewFaulty wraps dev so every n-th request fails with err.
func NewFaulty(e *sim.Engine, dev Device, n int, err error) *FaultyBdev {
	return &FaultyBdev{Device: dev, Every: n, Err: err, e: e}
}

// Submit implements Device with periodic injected failures.
func (f *FaultyBdev) Submit(req *ssd.Request) *sim.Future[ssd.Result] {
	f.count++
	if f.Every > 0 && f.count%f.Every == 0 {
		fut := sim.NewFuture[ssd.Result](f.e)
		fut.Resolve(ssd.Result{Err: f.Err})
		return fut
	}
	return f.Device.Submit(req)
}
