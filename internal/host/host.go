// Package host implements the NVMe-oF host (initiator) layer above the
// transports: controller discovery through identify admin commands, and
// multi-queue-pair controllers that spread I/O across connections the way
// SPDK's host driver pins qpairs to cores.
package host

import (
	"fmt"

	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/transport"
)

// Discover fetches the discovery log through an established queue and
// returns the subsystems the target exposes.
func Discover(p *sim.Proc, q transport.Queue) ([]nvme.DiscoveryEntry, error) {
	buf := make([]byte, 64<<10)
	res := q.Submit(p, &transport.IO{
		Admin: nvme.AdminGetLogPage, CDW10: nvme.LIDDiscovery, Data: buf, Size: len(buf),
	}).Wait(p)
	if err := res.Err(); err != nil {
		return nil, fmt.Errorf("host: discovery: %w", err)
	}
	return nvme.DecodeDiscoveryLog(res.Data)
}

// Controller is a connected NVMe-oF controller: identify data plus one or
// more I/O queue pairs.
type Controller struct {
	// Info is the controller identify page.
	Info nvme.IdentifyController
	// NS is the namespace-1 identify page.
	NS nvme.IdentifyNamespace

	queues []transport.Queue
	rr     int
}

// Probe connects a controller over already-established queues: it runs
// the identify flow on the first queue and validates the namespace.
func Probe(p *sim.Proc, queues ...transport.Queue) (*Controller, error) {
	if len(queues) == 0 {
		return nil, fmt.Errorf("host: no queues")
	}
	c := &Controller{queues: queues}
	ctrlBuf := make([]byte, 4096)
	res := queues[0].Submit(p, &transport.IO{
		Admin: nvme.AdminIdentify, CDW10: nvme.CNSController, Data: ctrlBuf, Size: 4096,
	}).Wait(p)
	if err := res.Err(); err != nil {
		return nil, fmt.Errorf("host: identify controller: %w", err)
	}
	info, err := nvme.DecodeIdentifyController(res.Data)
	if err != nil {
		return nil, err
	}
	c.Info = info

	nsBuf := make([]byte, 4096)
	res = queues[0].Submit(p, &transport.IO{
		Admin: nvme.AdminIdentify, CDW10: nvme.CNSNamespace, NSID: 1, Data: nsBuf, Size: 4096,
	}).Wait(p)
	if err := res.Err(); err != nil {
		return nil, fmt.Errorf("host: identify namespace: %w", err)
	}
	ns, err := nvme.DecodeIdentifyNamespace(res.Data)
	if err != nil {
		return nil, err
	}
	if ns.BlockSize == 0 || ns.NSZE == 0 {
		return nil, fmt.Errorf("host: namespace not ready: %+v", ns)
	}
	c.NS = ns
	return c, nil
}

// CapacityBytes returns the namespace capacity.
func (c *Controller) CapacityBytes() int64 {
	return int64(c.NS.NSZE) * int64(c.NS.BlockSize)
}

// Queues returns the number of I/O queue pairs.
func (c *Controller) Queues() int { return len(c.queues) }

// Submit issues an I/O on the next queue pair (round-robin), validating
// the range against the discovered namespace geometry first.
func (c *Controller) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	if io.Admin == 0 {
		if io.Offset < 0 || io.Offset+int64(io.Size) > c.CapacityBytes() {
			fut := sim.NewFuture[*transport.Result](p.Engine())
			fut.Resolve(&transport.Result{Status: nvme.StatusLBAOutOfRange})
			return fut
		}
	}
	q := c.queues[c.rr%len(c.queues)]
	c.rr++
	return q.Submit(p, io)
}

// Close shuts down all queue pairs.
func (c *Controller) Close() {
	for _, q := range c.queues {
		q.Close()
	}
}
