package host

import (
	"testing"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

const nqn = "nqn.host-test"

// rig builds a target and n adaptive-fabric queues to it.
func rig(t *testing.T, n int) (*sim.Engine, func(p *sim.Proc) []transport.Queue) {
	t.Helper()
	e := sim.NewEngine(3)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(nqn)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 512<<20, ssdParams, false, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	fabric := core.NewFabric(e, model.DefaultSHM())
	srv := core.NewServer(e, tgt, core.ServerConfig{
		NQN: nqn, Design: core.DesignSHMZeroCopy, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
	})
	links := make([]*netsim.Link, n)
	for i := range links {
		links[i] = netsim.NewLoopLink(e, model.Loopback())
		srv.Serve(links[i].B)
	}
	return e, func(p *sim.Proc) []transport.Queue {
		var qs []transport.Queue
		for i := range links {
			region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 32)
			c, err := core.Connect(p, links[i].A, core.ClientConfig{
				NQN: nqn, QueueDepth: 32, Design: core.DesignSHMZeroCopy, Region: region,
				TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
			})
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, c)
		}
		return qs
	}
}

func TestProbeDiscoversGeometry(t *testing.T) {
	e, connect := rig(t, 1)
	e.Go("app", func(p *sim.Proc) {
		ctrl, err := Probe(p, connect(p)...)
		if err != nil {
			t.Fatal(err)
		}
		if ctrl.CapacityBytes() != 512<<20 {
			t.Errorf("capacity %d", ctrl.CapacityBytes())
		}
		if ctrl.Info.MN == "" || ctrl.Info.NN != 1 {
			t.Errorf("controller info: %+v", ctrl.Info)
		}
		ctrl.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiQueueRoundRobin(t *testing.T) {
	e, connect := rig(t, 4)
	e.Go("app", func(p *sim.Proc) {
		ctrl, err := Probe(p, connect(p)...)
		if err != nil {
			t.Fatal(err)
		}
		if ctrl.Queues() != 4 {
			t.Fatalf("queues %d", ctrl.Queues())
		}
		var futs []*sim.Future[*transport.Result]
		for i := 0; i < 32; i++ {
			futs = append(futs, ctrl.Submit(p, &transport.IO{Offset: int64(i) * 4096, Size: 4096}))
		}
		for _, f := range futs {
			if res := f.Wait(p); res.Err() != nil {
				t.Errorf("io: %v", res.Err())
			}
		}
		ctrl.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHostRangeValidation(t *testing.T) {
	e, connect := rig(t, 1)
	e.Go("app", func(p *sim.Proc) {
		ctrl, err := Probe(p, connect(p)...)
		if err != nil {
			t.Fatal(err)
		}
		res := ctrl.Submit(p, &transport.IO{Offset: 512 << 20, Size: 4096}).Wait(p)
		if res.Status != nvme.StatusLBAOutOfRange {
			t.Errorf("status %v", res.Status)
		}
		ctrl.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeNoQueues(t *testing.T) {
	e := sim.NewEngine(1)
	e.Go("app", func(p *sim.Proc) {
		if _, err := Probe(p); err == nil {
			t.Error("probe with no queues should fail")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverListsSubsystems(t *testing.T) {
	e, connect := rig(t, 1)
	e.Go("app", func(p *sim.Proc) {
		qs := connect(p)
		entries, err := Discover(p, qs[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].SubNQN != nqn {
			t.Fatalf("discovery entries: %+v", entries)
		}
		if entries[0].TrType == 0 && entries[0].TrAddr == "" {
			t.Fatal("entry missing transport info")
		}
		qs[0].Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
