// Package cache implements a target-side DRAM block cache in front of
// any bdev.Device, mirroring SPDK's OCF integration and the managed
// DRAM tier of NetCAS: a sharded, set-associative store with per-set
// LRU eviction, write-through and write-back modes, a background
// flusher driven by the simulation engine, and NetCAS-style adaptive
// admission that bypasses large sequential streams so scans cannot
// evict the hot set.
//
// The cache is a transparent bdev.Device wrapper: the target's
// namespaces submit the same ssd.Requests, hits resolve immediately
// (DRAM time is below the simulator's bdev-submit CPU charge), misses
// fill whole aligned line spans from the backing device, and OpFlush
// remains a durability barrier — it returns only after every dirty
// line has reached the backing device and the backing flush completed.
//
// Failure semantics: injected backing errors propagate to the caller
// and never populate the cache; a flush-path write failure or a target
// crash with unflushed dirty lines surfaces as a typed *DirtyLossError
// on the next barrier, never as silent loss.
package cache

import (
	"fmt"
	"sync/atomic"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/ssd"
	"nvmeoaf/internal/telemetry"
)

// Mode selects the write policy.
type Mode int

const (
	// WriteThrough completes writes only after the backing device does;
	// present lines are updated in place, so reads still hit.
	WriteThrough Mode = iota
	// WriteBack completes line-aligned writes from DRAM and defers the
	// backing write to the flusher, bounded by MaxDirtyFrac.
	WriteBack
)

func (m Mode) String() string {
	if m == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// ParseMode parses "write-back"/"wb" or "write-through"/"wt".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "write-through", "wt", "":
		return WriteThrough, nil
	case "write-back", "wb":
		return WriteBack, nil
	}
	return 0, fmt.Errorf("cache: unknown mode %q", s)
}

// Config sizes and tunes one cache instance.
type Config struct {
	// Name labels the cache in stats (defaults to "cache-"+backing name).
	Name string
	// Bytes is the cache capacity (rounded down to whole lines).
	Bytes int64
	// LineSize is the cache-line size in bytes (default 4 KiB).
	LineSize int
	// Ways is the set associativity (default 8).
	Ways int
	// Shards spreads sets across independently indexed groups
	// (default 16, reduced for small caches).
	Shards int
	// Mode is the write policy (default WriteThrough).
	Mode Mode
	// MaxDirtyFrac bounds write-back dirt as a fraction of capacity;
	// beyond it writes degrade to write-through until the flusher
	// catches up (default 0.5).
	MaxDirtyFrac float64
	// BypassBytes: requests at least this large bypass the cache
	// (default 128 KiB; <0 disables size bypass).
	BypassBytes int
	// SeqBypassRun: after this many back-to-back sequential reads the
	// stream is classified as a scan and bypasses the cache while the
	// hit-rate EWMA shows an established hot set (default 8).
	SeqBypassRun int
	// Retain materializes line payloads so reads return real bytes;
	// must match the backing device's retention or reads through the
	// cache would diverge from reads around it.
	Retain bool
	// TenantDirtyFrac optionally partitions the write-back dirty budget
	// per tenant: a write attributed to a listed tenant degrades to
	// write-through once that tenant's dirty lines exceed its fraction
	// of capacity, even when the shared MaxDirtyFrac bound still has
	// room — one tenant's write burst cannot consume the whole absorb
	// budget. Tenants not listed (and unattributed writes) are bounded
	// only by the shared watermark.
	TenantDirtyFrac map[string]float64
	// Telemetry receives hit/miss/fill/evict counters and the
	// flush-latency histogram. Nil disables.
	Telemetry *telemetry.Sink
}

// DirtyLossError reports write-back data that never reached the backing
// device: a crash with unflushed dirty lines, or a backing write failure
// on the flush path. It is sticky until the next Flush barrier reports it.
type DirtyLossError struct {
	// Dev is the cache name.
	Dev string
	// Lines and Bytes count the lost dirty lines.
	Lines int
	Bytes int64
	// Cause is the backing error for flush-path failures (nil for crash).
	Cause error
}

func (e *DirtyLossError) Error() string {
	msg := fmt.Sprintf("cache %s: lost %d dirty lines (%d bytes) before they reached the backing device", e.Dev, e.Lines, e.Bytes)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the backing error.
func (e *DirtyLossError) Unwrap() error { return e.Cause }

// line is one cache line. tag is the line number (-1 = invalid).
// tenant records who dirtied the line (retained across flushes so a
// racing re-dirty reattributes to the same tenant).
type line struct {
	tag     int64
	dirty   bool
	lastUse uint64
	tenant  string
	data    []byte
}

// EWMA constants for the adaptive-admission hit-rate tracker (the
// pollPolicy idiom from internal/core/adaptive.go, with the warm
// counter saturating at a small constant).
const (
	ewmaAlpha   = 0.05
	ewmaWarmSat = 1024
	ewmaWarmMin = 16
	// protectEWMA: sequential scans bypass only once the hit rate shows
	// a hot set worth protecting; a cold cache admits everything.
	protectEWMA = 0.2
)

// flushWindow bounds concurrently in-flight flusher writes.
const flushWindow = 16

// Cache is a DRAM block cache wrapping a backing bdev.Device.
// It implements bdev.Device.
type Cache struct {
	e       *sim.Engine
	backing bdev.Device
	cfg     Config
	tel     *telemetry.Sink

	lines    []line
	slab     []byte // one allocation backing all line payloads (Retain)
	shards   int
	sets     int // sets per shard
	ways     int
	lineSize int64
	tick     uint64

	// Write-back state. The watermarks and the bypass threshold are
	// atomics: the tuning controller (or an operator goroutine) adjusts
	// them live via SetMaxDirtyFrac/SetBypassBytes.
	dirtyBytes  int64
	// dirtyByTenant partitions dirtyBytes by the tenant that dirtied
	// each line (only maintained when TenantDirtyFrac is configured).
	dirtyByTenant map[string]int64
	capBytes      int64
	hiWater     atomic.Int64
	loWater     atomic.Int64
	bypassBytes atomic.Int64
	kickQ      *sim.Queue[struct{}]
	flushing   bool
	// flushMu serializes flushBatch between the background flusher and
	// Flush barriers: batches share the scratch slabs, and a barrier must
	// not issue the backing flush while a daemon batch is in flight.
	flushMu     *sim.Semaphore
	flushCursor int             // round-robin dirty-scan position
	loss        *DirtyLossError // sticky until the next barrier reports it
	// flight tracks lines whose flusher write-back is in flight. The
	// backing device applies data at completion, so while a line is in
	// flight its cached copy — not the backing device — is authoritative:
	// overlapping write-throughs are ordered behind the batch (flightDone),
	// fills must not overwrite or evict the line, and bypass-read overlay
	// covers it like a dirty line.
	flight     map[int64]struct{}
	flightDone *sim.Future[struct{}] // resolves when the in-flight batch fully lands

	// Adaptive admission.
	hitEWMA float64
	warm    int
	seqNext int64
	seqRun  int

	// scratch slabs decouple in-flight flusher writes from concurrent
	// re-dirtying of the same lines (Retain only).
	scratch [][]byte

	stats Stats
}

// Stats is the exported cache accounting.
type Stats struct {
	Name     string `json:"name"`
	Bytes    int64  `json:"bytes"`
	LineSize int    `json:"line_size"`
	Mode     string `json:"mode"`

	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Fills         int64 `json:"fills"`
	Evictions     int64 `json:"evictions"`
	Bypasses      int64 `json:"bypasses"`
	WriteBacks    int64 `json:"write_backs"`
	WriteThroughs int64 `json:"write_throughs"`
	Throttled     int64 `json:"throttled,omitempty"`
	DirtyBytes    int64 `json:"dirty_bytes"`
	FlushedBytes  int64 `json:"flushed_bytes,omitempty"`
	LostLines     int64 `json:"lost_lines,omitempty"`
	LostBytes     int64 `json:"lost_bytes,omitempty"`

	// HitRateEWMA is the adaptive-admission tracker's live hit rate.
	HitRateEWMA float64 `json:"hit_rate_ewma"`
}

// HitRate returns the all-time hit fraction in [0,1].
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// New wraps backing with a cache and starts its flusher daemon.
func New(e *sim.Engine, backing bdev.Device, cfg Config) *Cache {
	if cfg.LineSize <= 0 {
		cfg.LineSize = 4096
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 8
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.MaxDirtyFrac <= 0 {
		cfg.MaxDirtyFrac = 0.5
	}
	if cfg.BypassBytes == 0 {
		cfg.BypassBytes = 128 << 10
	}
	if cfg.SeqBypassRun <= 0 {
		cfg.SeqBypassRun = 8
	}
	if cfg.Name == "" {
		cfg.Name = "cache-" + backing.Name()
	}
	total := int(cfg.Bytes / int64(cfg.LineSize))
	if total < cfg.Ways {
		total = cfg.Ways
	}
	shards := cfg.Shards
	for shards > 1 && total/(shards*cfg.Ways) < 1 {
		shards /= 2
	}
	sets := total / (shards * cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &^= sets & -sets
	}
	nLines := shards * sets * cfg.Ways

	c := &Cache{
		e:        e,
		backing:  backing,
		cfg:      cfg,
		tel:      cfg.Telemetry,
		lines:    make([]line, nLines),
		shards:   shards,
		sets:     sets,
		ways:     cfg.Ways,
		lineSize: int64(cfg.LineSize),
		kickQ:    sim.NewQueue[struct{}](e, 0),
		flushMu:  sim.NewSemaphore(e, 1),
		flight:   make(map[int64]struct{}),
	}
	capBytes := int64(nLines) * c.lineSize
	c.capBytes = capBytes
	c.SetMaxDirtyFrac(cfg.MaxDirtyFrac)
	if len(cfg.TenantDirtyFrac) > 0 {
		c.dirtyByTenant = make(map[string]int64, len(cfg.TenantDirtyFrac))
	}
	c.bypassBytes.Store(int64(cfg.BypassBytes))
	for i := range c.lines {
		c.lines[i].tag = -1
	}
	if cfg.Retain {
		c.slab = make([]byte, capBytes)
		for i := range c.lines {
			c.lines[i].data = c.slab[int64(i)*c.lineSize : int64(i+1)*c.lineSize]
		}
		c.scratch = make([][]byte, flushWindow)
		for i := range c.scratch {
			c.scratch[i] = make([]byte, cfg.LineSize)
		}
	}
	c.stats = Stats{Name: cfg.Name, Bytes: capBytes, LineSize: cfg.LineSize, Mode: cfg.Mode.String()}
	e.GoDaemon("cache-flusher/"+cfg.Name, c.flusherLoop)
	return c
}

// Name implements bdev.Device.
func (c *Cache) Name() string { return c.cfg.Name }

// SetMaxDirtyFrac retunes the write-back dirty bound live: the high
// watermark becomes frac of capacity (at least one line) and the low
// watermark a quarter of that. Lowering it below the current dirt makes
// new write-back absorption throttle until the flusher catches up —
// no restart, no data movement beyond the usual flush path.
func (c *Cache) SetMaxDirtyFrac(frac float64) {
	if frac <= 0 {
		frac = 0.5
	} else if frac > 1 {
		frac = 1
	}
	hi := int64(frac * float64(c.capBytes))
	if hi < c.lineSize {
		hi = c.lineSize
	}
	c.hiWater.Store(hi)
	c.loWater.Store(hi / 4)
}

// MaxDirtyBytes returns the live high watermark in bytes.
func (c *Cache) MaxDirtyBytes() int64 { return c.hiWater.Load() }

// CapBytes returns the cache capacity in bytes (fixed at construction).
func (c *Cache) CapBytes() int64 { return c.capBytes }

// SetBypassBytes retunes the large-request admission threshold live;
// n <= 0 disables size-based bypass.
func (c *Cache) SetBypassBytes(n int) {
	if n < 0 {
		n = 0
	}
	c.bypassBytes.Store(int64(n))
}

// LiveBypassBytes returns the live admission threshold (0 = disabled).
func (c *Cache) LiveBypassBytes() int { return int(c.bypassBytes.Load()) }

// BlockSize implements bdev.Device.
func (c *Cache) BlockSize() int { return c.backing.BlockSize() }

// Blocks implements bdev.Device.
func (c *Cache) Blocks() int64 { return c.backing.Blocks() }

// Backing exposes the wrapped device.
func (c *Cache) Backing() bdev.Device { return c.backing }

// Stats returns a copy of the cache accounting.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.DirtyBytes = c.dirtyBytes
	s.HitRateEWMA = c.hitEWMA
	return s
}

// mix spreads line numbers across shards and sets (splitmix64 finalizer).
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// setBase returns the index of the first way of lineNo's set.
func (c *Cache) setBase(lineNo int64) int {
	h := mix(uint64(lineNo))
	shard := int(h) & (c.shards - 1)
	set := int(h>>16) & (c.sets - 1)
	return (shard*c.sets + set) * c.ways
}

// lookup finds lineNo's way index, or -1.
func (c *Cache) lookup(lineNo int64) int {
	base := c.setBase(lineNo)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == lineNo {
			return i
		}
	}
	return -1
}

// victim picks a fill slot in lineNo's set: an invalid way, else the
// least-recently-used clean way. Dirty lines are never evicted by fills
// (they leave only through the flusher), and neither are lines with an
// in-flight write-back (the cache copy is still authoritative until it
// lands); -1 means no way in the set is evictable.
func (c *Cache) victim(lineNo int64) int {
	base := c.setBase(lineNo)
	best, bestUse := -1, ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		ln := &c.lines[i]
		if ln.tag == -1 {
			return i
		}
		if !ln.dirty && !c.inFlight(ln.tag) && ln.lastUse < bestUse {
			best, bestUse = i, ln.lastUse
		}
	}
	return best
}

// inFlight reports whether lineNo has a flusher write-back in flight.
func (c *Cache) inFlight(lineNo int64) bool {
	_, ok := c.flight[lineNo]
	return ok
}

// span returns the line-aligned range [first,last] of lines covering
// [off, off+size).
func (c *Cache) span(off int64, size int) (first, last int64) {
	return off / c.lineSize, (off + int64(size) - 1) / c.lineSize
}

// observeRead feeds the admission EWMA (pollPolicy idiom, saturating
// warm counter).
func (c *Cache) observeRead(hit bool) {
	v := 0.0
	if hit {
		v = 1.0
	}
	if c.warm == 0 {
		c.hitEWMA = v
	} else {
		c.hitEWMA = (1-ewmaAlpha)*c.hitEWMA + ewmaAlpha*v
	}
	if c.warm < ewmaWarmSat {
		c.warm++
	}
}

// noteSeq updates the sequential-run detector and reports whether the
// request continues a run long enough to classify as a scan.
func (c *Cache) noteSeq(off int64, size int) bool {
	if off == c.seqNext {
		c.seqRun++
	} else {
		c.seqRun = 0
	}
	c.seqNext = off + int64(size)
	return c.seqRun >= c.cfg.SeqBypassRun
}

// bypassRead decides admission for a read: large requests always
// bypass; sequential scans bypass once the EWMA shows a hot set worth
// protecting (NetCAS-style adaptive admission).
func (c *Cache) bypassRead(off int64, size int) bool {
	seq := c.noteSeq(off, size)
	if bp := c.bypassBytes.Load(); bp > 0 && int64(size) >= bp {
		return true
	}
	return seq && c.warm >= ewmaWarmMin && c.hitEWMA >= protectEWMA
}

// tryReadHit serves [off,off+size) from resident lines, touching LRU
// state and accounting. dst receives the bytes when non-nil (Retain).
// It reports whether every covered line was resident. This path is
// allocation-free in modeled (non-Retain) operation.
func (c *Cache) tryReadHit(off int64, size int, dst []byte) bool {
	first, last := c.span(off, size)
	// Probe all lines first: a partial hit is a miss (the whole span
	// refills), and LRU/data must not be touched for misses.
	for ln := first; ln <= last; ln++ {
		if c.lookup(ln) < 0 {
			return false
		}
	}
	for ln := first; ln <= last; ln++ {
		i := c.lookup(ln)
		c.tick++
		c.lines[i].lastUse = c.tick
		if dst != nil {
			lo := ln * c.lineSize
			hi := lo + c.lineSize
			if lo < off {
				lo = off
			}
			if end := off + int64(size); hi > end {
				hi = end
			}
			copy(dst[lo-off:hi-off], c.lines[i].data[lo-ln*c.lineSize:hi-ln*c.lineSize])
		}
	}
	c.stats.Hits++
	c.tel.Inc(telemetry.CtrCacheHit)
	return true
}

// overlayDirty copies resident dirty-line bytes over buf (which holds
// backing data for [off,off+size)), so bypassed reads still observe
// unflushed writes (Retain only). Lines with an in-flight write-back are
// overlaid too: the backing read may have raced the write-back, so the
// cached copy is the authoritative one until it lands.
func (c *Cache) overlayDirty(off int64, size int, buf []byte) {
	if buf == nil {
		return
	}
	first, last := c.span(off, size)
	for ln := first; ln <= last; ln++ {
		i := c.lookup(ln)
		if i < 0 || (!c.lines[i].dirty && !c.inFlight(ln)) {
			continue
		}
		lo := ln * c.lineSize
		hi := lo + c.lineSize
		if lo < off {
			lo = off
		}
		if end := off + int64(size); hi > end {
			hi = end
		}
		copy(buf[lo-off:hi-off], c.lines[i].data[lo-ln*c.lineSize:hi-ln*c.lineSize])
	}
}

// install populates lines [first,last] from spanData (backing bytes for
// that aligned range; nil in modeled mode). Resident dirty lines keep
// their newer data. Sets whose ways are all dirty skip the fill.
func (c *Cache) install(first, last int64, spanOff int64, spanData []byte) {
	for ln := first; ln <= last; ln++ {
		i := c.lookup(ln)
		if i < 0 {
			i = c.victim(ln)
			if i < 0 {
				continue // every way dirty: fill skipped, flusher will drain
			}
			if c.lines[i].tag != -1 {
				c.stats.Evictions++
				c.tel.Inc(telemetry.CtrCacheEvict)
			}
			c.lines[i].tag = ln
			c.lines[i].tenant = ""
			c.lines[i].dirty = false
			c.stats.Fills++
			c.tel.Inc(telemetry.CtrCacheFill)
		} else if c.lines[i].dirty || c.inFlight(ln) {
			c.tick++
			c.lines[i].lastUse = c.tick
			// Resident dirty data is newer than the backing span; a line
			// with an in-flight write-back likewise — the span read may
			// have raced the write-back at the device.
			continue
		}
		c.tick++
		c.lines[i].lastUse = c.tick
		if spanData != nil {
			o := ln*c.lineSize - spanOff
			end := o + c.lineSize
			if end > int64(len(spanData)) {
				end = int64(len(spanData))
			}
			copy(c.lines[i].data, spanData[o:end])
		}
	}
}

// markDirty marks a resident line dirty, accounting the transition to
// the named tenant (empty keeps the line's previous attribution, which
// is what a flusher-raced re-dirty wants).
func (c *Cache) markDirty(i int, tenant string) {
	if !c.lines[i].dirty {
		c.lines[i].dirty = true
		c.dirtyBytes += c.lineSize
		if tenant != "" {
			c.lines[i].tenant = tenant
		}
		if t := c.lines[i].tenant; t != "" && c.dirtyByTenant != nil {
			c.dirtyByTenant[t] += c.lineSize
		}
		c.stats.DirtyBytes = c.dirtyBytes
		c.tel.Add(telemetry.CtrCacheDirtyBytes, c.lineSize)
	}
}

// cleanLine accounts one dirty line's transition back to clean.
func (c *Cache) cleanLine(i int) {
	c.lines[i].dirty = false
	c.dirtyBytes -= c.lineSize
	if t := c.lines[i].tenant; t != "" && c.dirtyByTenant != nil {
		c.dirtyByTenant[t] -= c.lineSize
	}
}

// tenantDirtyOver reports whether absorbing size more dirty bytes for
// the tenant would exceed its configured partition of the dirty budget.
func (c *Cache) tenantDirtyOver(tenant string, size int) bool {
	if tenant == "" || c.dirtyByTenant == nil {
		return false
	}
	frac, ok := c.cfg.TenantDirtyFrac[tenant]
	if !ok {
		return false
	}
	return float64(c.dirtyByTenant[tenant]+int64(size)) > frac*float64(c.capBytes)
}

// TenantDirty returns the named tenant's current dirty bytes.
func (c *Cache) TenantDirty(tenant string) int64 { return c.dirtyByTenant[tenant] }

// updateResident copies the overlap of a completed write into resident
// lines so subsequent hits observe it (Retain with materialized data).
func (c *Cache) updateResident(off int64, data []byte) {
	if data == nil {
		return
	}
	first, last := c.span(off, len(data))
	for ln := first; ln <= last; ln++ {
		i := c.lookup(ln)
		if i < 0 {
			continue
		}
		lo := ln * c.lineSize
		hi := lo + c.lineSize
		if lo < off {
			lo = off
		}
		if end := off + int64(len(data)); hi > end {
			hi = end
		}
		copy(c.lines[i].data[lo-ln*c.lineSize:hi-ln*c.lineSize], data[lo-off:hi-off])
		c.tick++
		c.lines[i].lastUse = c.tick
	}
}

// Submit implements bdev.Device.
func (c *Cache) Submit(req *ssd.Request) *sim.Future[ssd.Result] {
	switch req.Op {
	case ssd.OpRead:
		return c.submitRead(req)
	case ssd.OpWrite:
		return c.submitWrite(req)
	case ssd.OpFlush:
		return c.submitFlush()
	default:
		return c.backing.Submit(req)
	}
}

// inBounds reports whether the request fits the device; out-of-range
// requests forward to the backing device for its canonical error.
func (c *Cache) inBounds(req *ssd.Request) bool {
	capacity := c.backing.Blocks() * int64(c.backing.BlockSize())
	return req.Size > 0 && req.Offset >= 0 && req.Offset+int64(req.Size) <= capacity
}

func (c *Cache) submitRead(req *ssd.Request) *sim.Future[ssd.Result] {
	if !c.inBounds(req) {
		return c.backing.Submit(req)
	}
	if c.bypassRead(req.Offset, req.Size) {
		c.stats.Bypasses++
		c.tel.Inc(telemetry.CtrCacheBypass)
		inner := c.backing.Submit(req)
		if !c.cfg.Retain || c.dirtyBytes == 0 {
			return inner
		}
		// Unflushed write-back data must stay visible to bypassed reads.
		out := sim.NewFuture[ssd.Result](c.e)
		off, size := req.Offset, req.Size
		inner.OnResolve(func(r ssd.Result) {
			if r.Err == nil {
				c.overlayDirty(off, size, r.Data)
			}
			out.Resolve(r)
		})
		return out
	}

	fut := sim.NewFuture[ssd.Result](c.e)
	var dst []byte
	if c.cfg.Retain {
		dst = make([]byte, req.Size)
	}
	if c.tryReadHit(req.Offset, req.Size, dst) {
		c.observeRead(true)
		fut.Resolve(ssd.Result{Data: dst})
		return fut
	}
	c.observeRead(false)
	c.stats.Misses++
	c.tel.Inc(telemetry.CtrCacheMiss)

	// Miss: fill the whole aligned span so partial-line requests leave
	// complete lines behind.
	first, last := c.span(req.Offset, req.Size)
	spanOff := first * c.lineSize
	spanEnd := (last + 1) * c.lineSize
	if capacity := c.backing.Blocks() * int64(c.backing.BlockSize()); spanEnd > capacity {
		spanEnd = capacity
	}
	off, size := req.Offset, req.Size
	fill := &ssd.Request{Op: ssd.OpRead, Offset: spanOff, Size: int(spanEnd - spanOff)}
	c.backing.Submit(fill).OnResolve(func(r ssd.Result) {
		if r.Err != nil {
			// Errors never populate the cache.
			fut.Resolve(ssd.Result{Err: r.Err})
			return
		}
		// Resident dirty lines are newer than the span just read; lay
		// them over the span before installing and slicing the reply.
		if r.Data != nil {
			c.overlayDirty(spanOff, len(r.Data), r.Data)
		}
		c.install(first, last, spanOff, r.Data)
		var data []byte
		if r.Data != nil {
			data = r.Data[off-spanOff : off-spanOff+int64(size)]
		}
		fut.Resolve(ssd.Result{Data: data})
	})
	return fut
}

func (c *Cache) submitWrite(req *ssd.Request) *sim.Future[ssd.Result] {
	if !c.inBounds(req) || (req.Data != nil && len(req.Data) != req.Size) {
		return c.backing.Submit(req)
	}
	c.noteSeq(req.Offset, req.Size)
	aligned := req.Offset%c.lineSize == 0 && int64(req.Size)%c.lineSize == 0
	bp := c.bypassBytes.Load()
	large := bp > 0 && int64(req.Size) >= bp
	// Retained caches cannot absorb modeled (nil-payload) writes: the
	// backing device ignores their bytes, so caching them would invent
	// data. They fall through to write-through, which is a no-op on
	// resident line contents — matching the backing semantics exactly.
	materializable := !c.cfg.Retain || req.Data != nil
	if c.cfg.Mode == WriteBack && aligned && !large && materializable {
		hi := c.hiWater.Load()
		if c.dirtyBytes+int64(req.Size) > hi || c.tenantDirtyOver(req.Tenant, req.Size) {
			c.stats.Throttled++
			c.tel.Inc(telemetry.CtrCacheThrottled)
			c.kick()
		} else if c.absorbWrite(req) {
			c.stats.WriteBacks++
			c.tel.Inc(telemetry.CtrCacheWriteBack)
			if c.dirtyBytes >= hi/2 {
				c.kick()
			}
			fut := sim.NewFuture[ssd.Result](c.e)
			fut.Resolve(ssd.Result{})
			return fut
		}
	}

	// Write-through (also the write-back fallback): the backing write
	// completes the command; resident lines are updated in place.
	c.stats.WriteThroughs++
	c.tel.Inc(telemetry.CtrCacheWriteThrough)
	return c.submitWriteThrough(req)
}

// submitWriteThrough issues the backing write for a write-through,
// ordering it behind any in-flight flusher write-back to the same lines:
// the backing device applies data at completion, so an unordered stale
// write-back could otherwise land after this newer write and leave the
// device stale behind a clean cache line.
func (c *Cache) submitWriteThrough(req *ssd.Request) *sim.Future[ssd.Result] {
	if c.flightDone != nil && c.overlapsFlight(req.Offset, req.Size) {
		out := sim.NewFuture[ssd.Result](c.e)
		c.flightDone.OnResolve(func(struct{}) {
			c.issueWriteThrough(req).OnResolve(out.Resolve)
		})
		return out
	}
	return c.issueWriteThrough(req)
}

// issueWriteThrough submits the backing write and, on success, folds the
// bytes into resident lines. Covered lines captured by a flush batch that
// started while this write was in flight are re-dirtied: that batch's
// data predates this write, so the line must be flushed again with its
// current bytes after the racing write-back lands.
func (c *Cache) issueWriteThrough(req *ssd.Request) *sim.Future[ssd.Result] {
	inner := c.backing.Submit(req)
	if !c.cfg.Retain || req.Data == nil {
		return inner
	}
	out := sim.NewFuture[ssd.Result](c.e)
	off, data := req.Offset, req.Data
	inner.OnResolve(func(r ssd.Result) {
		if r.Err == nil {
			c.updateResident(off, data)
			c.redirtyFlight(off, len(data))
		}
		out.Resolve(r)
	})
	return out
}

// overlapsFlight reports whether [off,off+size) covers a line with an
// in-flight flusher write-back.
func (c *Cache) overlapsFlight(off int64, size int) bool {
	if len(c.flight) == 0 {
		return false
	}
	first, last := c.span(off, size)
	for ln := first; ln <= last; ln++ {
		if c.inFlight(ln) {
			return true
		}
	}
	return false
}

// redirtyFlight re-dirties resident lines in [off,off+size) whose
// write-back is in flight, forcing a re-flush of their current bytes.
func (c *Cache) redirtyFlight(off int64, size int) {
	if len(c.flight) == 0 {
		return
	}
	first, last := c.span(off, size)
	dirtied := false
	for ln := first; ln <= last; ln++ {
		if !c.inFlight(ln) {
			continue
		}
		if i := c.lookup(ln); i >= 0 {
			c.markDirty(i, "")
			dirtied = true
		}
	}
	if dirtied {
		c.kick()
	}
}

// absorbWrite installs a line-aligned write as dirty lines, two-phase:
// it first checks every covered line is resident or has a clean victim,
// then commits. It reports false when infeasible (caller degrades to
// write-through). The pre-check is advisory only — when two lines hash
// to one set, committing the first can consume the last clean way — so
// the commit phase re-checks and bails rather than indexing out of range.
func (c *Cache) absorbWrite(req *ssd.Request) bool {
	first, last := c.span(req.Offset, req.Size)
	for ln := first; ln <= last; ln++ {
		if c.lookup(ln) < 0 && c.victim(ln) < 0 {
			return false
		}
	}
	for ln := first; ln <= last; ln++ {
		i := c.lookup(ln)
		if i < 0 {
			i = c.victim(ln)
			if i < 0 {
				// Two lines of this write hash to the same set and
				// committing an earlier one consumed the set's last clean
				// way. Degrade the whole write to write-through: lines
				// already dirtied hold exactly the bytes the write-through
				// persists, so nothing diverges.
				return false
			}
			if c.lines[i].tag != -1 {
				c.stats.Evictions++
				c.tel.Inc(telemetry.CtrCacheEvict)
			}
			c.lines[i].tag = ln
			c.lines[i].tenant = ""
			c.lines[i].dirty = false
			c.stats.Fills++
			c.tel.Inc(telemetry.CtrCacheFill)
		}
		c.tick++
		c.lines[i].lastUse = c.tick
		if req.Data != nil {
			o := ln*c.lineSize - req.Offset
			copy(c.lines[i].data, req.Data[o:o+c.lineSize])
		}
		c.markDirty(i, req.Tenant)
	}
	return true
}

// kick nudges the flusher daemon without blocking.
func (c *Cache) kick() {
	if !c.flushing {
		c.kickQ.TryPut(struct{}{})
	}
}

// flusherLoop is the background flusher: a purely event-driven daemon
// (no timers, so the engine still drains) that writes dirty lines back
// until dirt falls under the low watermark.
func (c *Cache) flusherLoop(p *sim.Proc) {
	for {
		if _, ok := c.kickQ.Get(p); !ok {
			return
		}
		for {
			if _, more := c.kickQ.TryGet(); !more {
				break
			}
		}
		c.flushing = true
		c.flushMu.Acquire(p)
		for c.dirtyBytes > c.loWater.Load() {
			if c.flushBatch(p) == 0 {
				break
			}
		}
		c.flushMu.Release()
		c.flushing = false
	}
}

// flushBatch writes back up to flushWindow dirty lines concurrently and
// waits for all of them; it returns the number of lines captured.
// Lines are marked clean at capture: a write landing mid-flush re-dirties
// the line and it is flushed again on a later pass.
func (c *Cache) flushBatch(p *sim.Proc) int {
	type capture struct {
		lineNo int64
		idx    int
		fut    *sim.Future[ssd.Result]
		start  sim.Time
	}
	var caps []capture
	for n := 0; n < len(c.lines) && len(caps) < flushWindow; n++ {
		i := (c.flushCursor + n) % len(c.lines)
		if !c.lines[i].dirty {
			continue
		}
		ln := c.lines[i].tag
		c.cleanLine(i)
		c.stats.DirtyBytes = c.dirtyBytes
		c.tel.Add(telemetry.CtrCacheDirtyBytes, -c.lineSize)
		var data []byte
		if c.cfg.Retain {
			data = c.scratch[len(caps)]
			copy(data, c.lines[i].data)
		}
		size := int(c.lineSize)
		if end := c.backing.Blocks() * int64(c.backing.BlockSize()); ln*c.lineSize+c.lineSize > end {
			size = int(end - ln*c.lineSize)
			if data != nil {
				data = data[:size]
			}
		}
		if c.flightDone == nil {
			c.flightDone = sim.NewFuture[struct{}](c.e)
		}
		c.flight[ln] = struct{}{}
		fut := c.backing.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: ln * c.lineSize, Size: size, Data: data})
		caps = append(caps, capture{lineNo: ln, idx: i, fut: fut, start: p.Now()})
		c.flushCursor = i + 1
	}
	for _, cp := range caps {
		res := cp.fut.Wait(p)
		delete(c.flight, cp.lineNo)
		c.tel.ObserveDuration(telemetry.HistCacheFlushLat, p.Now().Sub(cp.start))
		if res.Err != nil {
			if c.lines[cp.idx].tag == cp.lineNo && c.lines[cp.idx].dirty {
				// Re-dirtied with newer acked data while the failed
				// write-back was in flight: keep the line resident and
				// dirty so the flusher retries the newer bytes. Nothing
				// is durably lost — the retry carries this version too.
				continue
			}
			// The backing device refused the write-back and no newer
			// version exists: the line's data is lost to durability.
			// Record it (sticky, typed) and drop the line so reads stop
			// serving bytes the device never got.
			c.recordLoss(1, res.Err)
			if c.lines[cp.idx].tag == cp.lineNo {
				c.lines[cp.idx].tag = -1
			}
			continue
		}
		c.stats.FlushedBytes += c.lineSize
	}
	if done := c.flightDone; done != nil {
		c.flightDone = nil
		done.Resolve(struct{}{})
	}
	return len(caps)
}

// recordLoss accounts lost dirty lines and arms the sticky loss error.
func (c *Cache) recordLoss(lines int, cause error) {
	c.stats.LostLines += int64(lines)
	c.stats.LostBytes += int64(lines) * c.lineSize
	c.tel.Add(telemetry.CtrCacheDirtyLost, int64(lines))
	if c.loss == nil {
		c.loss = &DirtyLossError{Dev: c.cfg.Name, Cause: cause}
	}
	c.loss.Lines += lines
	c.loss.Bytes += int64(lines) * c.lineSize
}

// Flush is the durability barrier: it writes back every dirty line,
// issues a backing flush, and returns only when both are complete. A
// pending dirty-loss condition (crash, failed write-back) is returned
// as *DirtyLossError — reported once, then cleared.
func (c *Cache) Flush(p *sim.Proc) error {
	// Holding flushMu across the drain AND the backing flush guarantees no
	// daemon write-back is still in flight when the barrier completes.
	c.flushMu.Acquire(p)
	defer c.flushMu.Release()
	for c.dirtyBytes > 0 {
		if c.flushBatch(p) == 0 {
			break
		}
	}
	res := c.backing.Submit(&ssd.Request{Op: ssd.OpFlush}).Wait(p)
	if res.Err != nil {
		return res.Err
	}
	if c.loss != nil {
		err := c.loss
		c.loss = nil
		return err
	}
	return nil
}

// submitFlush runs the Flush barrier from a spawned process so Submit
// itself never blocks.
func (c *Cache) submitFlush() *sim.Future[ssd.Result] {
	fut := sim.NewFuture[ssd.Result](c.e)
	c.e.Go("cache-flush/"+c.cfg.Name, func(p *sim.Proc) {
		fut.Resolve(ssd.Result{Err: c.Flush(p)})
	})
	return fut
}

// LoseDirty models target-process death with unflushed write-back data:
// every dirty line is dropped and recorded as lost, arming the sticky
// typed error the next Flush barrier reports. It returns the loss just
// recorded (nil when the cache was clean).
func (c *Cache) LoseDirty() *DirtyLossError {
	lost := 0
	for i := range c.lines {
		if !c.lines[i].dirty {
			continue
		}
		c.cleanLine(i)
		c.lines[i].tag = -1
		c.lines[i].tenant = ""
		lost++
	}
	c.stats.DirtyBytes = c.dirtyBytes
	c.tel.Add(telemetry.CtrCacheDirtyBytes, -int64(lost)*c.lineSize)
	if lost == 0 {
		return nil
	}
	c.recordLoss(lost, nil)
	return &DirtyLossError{Dev: c.cfg.Name, Lines: lost, Bytes: int64(lost) * c.lineSize}
}

// LostDirty reports the pending (unreported) dirty-loss condition, if
// any, without clearing it.
func (c *Cache) LostDirty() *DirtyLossError { return c.loss }
