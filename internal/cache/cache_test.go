package cache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/ssd"
)

// countingBdev wraps a device and counts submissions by op, optionally
// failing writes on demand (for flush-path loss tests).
type countingBdev struct {
	bdev.Device
	e          *sim.Engine
	reads      int
	writes     int
	flushes    int
	failWrites error
}

func (d *countingBdev) Submit(req *ssd.Request) *sim.Future[ssd.Result] {
	switch req.Op {
	case ssd.OpRead:
		d.reads++
	case ssd.OpWrite:
		d.writes++
		if d.failWrites != nil {
			fut := sim.NewFuture[ssd.Result](d.e)
			fut.Resolve(ssd.Result{Err: d.failWrites})
			return fut
		}
	case ssd.OpFlush:
		d.flushes++
	}
	return d.Device.Submit(req)
}

// rig builds an engine, a jitter-free backing SSD behind a counting
// wrapper, and a cache over it.
func rig(t *testing.T, retain bool, cfg Config) (*sim.Engine, *countingBdev, *Cache) {
	t.Helper()
	e := sim.NewEngine(7)
	params := model.DefaultSSD()
	params.JitterFrac = 0
	params.StallProb = 0
	backing := &countingBdev{
		Device: bdev.NewSimSSD(e, "nvme0", 64<<20, params, retain, 512),
		e:      e,
	}
	cfg.Retain = retain
	return e, backing, New(e, backing, cfg)
}

// run drives fn as a simulation process to completion.
func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Go("test", fn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func read(p *sim.Proc, c *Cache, off int64, size int) ssd.Result {
	return c.Submit(&ssd.Request{Op: ssd.OpRead, Offset: off, Size: size}).Wait(p)
}

func write(p *sim.Proc, c *Cache, off int64, data []byte) ssd.Result {
	return c.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: off, Size: len(data), Data: data}).Wait(p)
}

func TestReadHitSkipsBackingDevice(t *testing.T) {
	e, backing, c := rig(t, false, Config{Bytes: 1 << 20})
	run(t, e, func(p *sim.Proc) {
		if res := read(p, c, 0, 4096); res.Err != nil {
			t.Fatal(res.Err)
		}
		missReads := backing.reads
		t0 := p.Now()
		if res := read(p, c, 0, 4096); res.Err != nil {
			t.Fatal(res.Err)
		}
		if backing.reads != missReads {
			t.Errorf("hit went to the backing device (%d reads)", backing.reads)
		}
		if lat := p.Now().Sub(t0); lat != 0 {
			t.Errorf("hit charged device time: %v", lat)
		}
	})
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats hits=%d misses=%d fills=%d, want 1/1/1", s.Hits, s.Misses, s.Fills)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate %.2f, want 0.5", s.HitRate())
	}
}

func TestRetainedReadBackThroughCache(t *testing.T) {
	e, _, c := rig(t, true, Config{Bytes: 1 << 20})
	payload := bytes.Repeat([]byte{0xA7}, 8192)
	run(t, e, func(p *sim.Proc) {
		if res := write(p, c, 4096, payload); res.Err != nil {
			t.Fatal(res.Err)
		}
		for round := 0; round < 2; round++ { // miss then hit
			res := read(p, c, 4096, len(payload))
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if !bytes.Equal(res.Data, payload) {
				t.Fatalf("round %d: bytes diverged through the cache", round)
			}
		}
		// Partial-line slice of a resident span.
		res := read(p, c, 6144, 1024)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !bytes.Equal(res.Data, payload[2048:3072]) {
			t.Fatal("partial-line hit returned wrong slice")
		}
	})
	if s := c.Stats(); s.Hits == 0 {
		t.Errorf("no hits recorded: %+v", s)
	}
}

func TestEvictionKeepsServingCorrectBytes(t *testing.T) {
	// 16 lines of 4 KiB: a 64-line working set must evict.
	e, _, c := rig(t, true, Config{Bytes: 64 << 10, Shards: 1, Ways: 4})
	run(t, e, func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			data := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if res := write(p, c, int64(i)*4096, data); res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		for i := 0; i < 64; i++ {
			res := read(p, c, int64(i)*4096, 4096)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Data[0] != byte(i+1) {
				t.Fatalf("line %d: got 0x%02x after eviction churn", i, res.Data[0])
			}
		}
	})
	if s := c.Stats(); s.Evictions == 0 {
		t.Errorf("64-line set over a 16-line cache must evict: %+v", s)
	}
}

func TestLargeReadsBypass(t *testing.T) {
	e, _, c := rig(t, false, Config{Bytes: 1 << 20, BypassBytes: 128 << 10})
	run(t, e, func(p *sim.Proc) {
		if res := read(p, c, 0, 256<<10); res.Err != nil {
			t.Fatal(res.Err)
		}
	})
	s := c.Stats()
	if s.Bypasses != 1 || s.Fills != 0 {
		t.Errorf("large read must bypass without filling: %+v", s)
	}
}

func TestSequentialScanBypassesOnlyWithHotSet(t *testing.T) {
	e, _, c := rig(t, false, Config{Bytes: 1 << 20, SeqBypassRun: 4})
	run(t, e, func(p *sim.Proc) {
		// Cold cache: a sequential sweep is admitted (nothing to protect).
		for i := 0; i < 16; i++ {
			read(p, c, int64(i)*4096, 4096)
		}
		if got := c.Stats().Bypasses; got != 0 {
			t.Fatalf("cold-cache scan bypassed %d reads", got)
		}
		// Establish a hot set (EWMA climbs past the protect threshold).
		for i := 0; i < 64; i++ {
			read(p, c, int64(i%4)*4096, 4096)
		}
		// Now the same sweep is classified as a scan and bypassed.
		before := c.Stats().Bypasses
		for i := 256; i < 272; i++ {
			read(p, c, int64(i)*4096, 4096)
		}
		if got := c.Stats().Bypasses; got <= before {
			t.Errorf("hot-set scan not bypassed (bypasses %d)", got)
		}
	})
}

func TestWriteBackDefersAndFlushBarrierDrains(t *testing.T) {
	e, backing, c := rig(t, true, Config{Bytes: 1 << 20, Mode: WriteBack})
	payload := bytes.Repeat([]byte{0x5C}, 4096)
	run(t, e, func(p *sim.Proc) {
		if res := write(p, c, 8192, payload); res.Err != nil {
			t.Fatal(res.Err)
		}
		if backing.writes != 0 {
			t.Fatalf("write-back hit the backing device (%d writes)", backing.writes)
		}
		if c.Stats().DirtyBytes == 0 {
			t.Fatal("absorbed write left no dirty bytes")
		}
		if res := c.Submit(&ssd.Request{Op: ssd.OpFlush}).Wait(p); res.Err != nil {
			t.Fatal(res.Err)
		}
		if backing.writes == 0 || backing.flushes == 0 {
			t.Fatalf("barrier did not reach the device: %d writes, %d flushes",
				backing.writes, backing.flushes)
		}
		if c.Stats().DirtyBytes != 0 {
			t.Fatalf("dirty bytes after barrier: %d", c.Stats().DirtyBytes)
		}
		// The backing device itself must now hold the bytes.
		res := backing.Device.Submit(&ssd.Request{Op: ssd.OpRead, Offset: 8192, Size: 4096}).Wait(p)
		if res.Err != nil || !bytes.Equal(res.Data, payload) {
			t.Fatal("flushed bytes did not reach the backing device")
		}
	})
	if s := c.Stats(); s.WriteBacks != 1 {
		t.Errorf("write-backs %d, want 1", s.WriteBacks)
	}
}

func TestWriteBackReadYourWrite(t *testing.T) {
	e, _, c := rig(t, true, Config{Bytes: 1 << 20, Mode: WriteBack, BypassBytes: 64 << 10})
	payload := bytes.Repeat([]byte{0xEE}, 4096)
	run(t, e, func(p *sim.Proc) {
		if res := write(p, c, 0, payload); res.Err != nil {
			t.Fatal(res.Err)
		}
		// Hit path sees the dirty line.
		res := read(p, c, 0, 4096)
		if res.Err != nil || !bytes.Equal(res.Data, payload) {
			t.Fatal("dirty line not visible to cached read")
		}
		// Bypassed (large) read must overlay unflushed dirty bytes too.
		res = read(p, c, 0, 128<<10)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !bytes.Equal(res.Data[:4096], payload) {
			t.Fatal("bypassed read lost unflushed write-back data")
		}
	})
}

func TestWriteBackThrottlesAtDirtyBound(t *testing.T) {
	// 64 KiB cache, dirty bound 25% = 4 lines: a burst must throttle.
	e, _, c := rig(t, false, Config{Bytes: 64 << 10, Mode: WriteBack, MaxDirtyFrac: 0.25})
	run(t, e, func(p *sim.Proc) {
		futs := make([]*sim.Future[ssd.Result], 0, 64)
		for i := 0; i < 64; i++ {
			futs = append(futs, c.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: int64(i) * 4096, Size: 4096}))
		}
		for _, f := range futs {
			if res := f.Wait(p); res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	})
	s := c.Stats()
	if s.Throttled == 0 || s.WriteThroughs == 0 {
		t.Errorf("burst past the dirty bound must degrade to write-through: %+v", s)
	}
	if s.DirtyBytes > int64(0.25*64<<10) {
		t.Errorf("dirty bytes %d exceed the bound", s.DirtyBytes)
	}
}

func TestBackgroundFlusherDrainsWithoutBarrier(t *testing.T) {
	e, backing, c := rig(t, false, Config{Bytes: 256 << 10, Mode: WriteBack, MaxDirtyFrac: 0.5})
	run(t, e, func(p *sim.Proc) {
		// Cross the kick threshold (half of hi-water) and let the engine run.
		for i := 0; i < 32; i++ {
			c.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: int64(i) * 4096, Size: 4096}).Wait(p)
		}
	})
	// Engine drained: the flusher must have written dirt back on its own.
	if backing.writes == 0 {
		t.Fatal("background flusher never wrote back")
	}
}

func TestBackingErrorPropagatesWithoutPopulating(t *testing.T) {
	e := sim.NewEngine(3)
	params := model.DefaultSSD()
	params.JitterFrac = 0
	params.StallProb = 0
	injected := errors.New("injected media error")
	// Every submission fails.
	faulty := bdev.NewFaulty(e, bdev.NewSimSSD(e, "nvme0", 64<<20, params, false, 512), 1, injected)
	c := New(e, faulty, Config{Bytes: 1 << 20})
	run(t, e, func(p *sim.Proc) {
		res := read(p, c, 0, 4096)
		if !errors.Is(res.Err, injected) {
			t.Fatalf("err = %v, want injected error", res.Err)
		}
	})
	if s := c.Stats(); s.Fills != 0 {
		t.Errorf("failed fill populated the cache: %+v", s)
	}
}

func TestFlushWriteFailureSurfacesTypedLoss(t *testing.T) {
	e, backing, c := rig(t, true, Config{Bytes: 1 << 20, Mode: WriteBack})
	run(t, e, func(p *sim.Proc) {
		if res := write(p, c, 0, bytes.Repeat([]byte{1}, 4096)); res.Err != nil {
			t.Fatal(res.Err)
		}
		backing.failWrites = errors.New("device write fault")
		err := c.Flush(p)
		var loss *DirtyLossError
		if !errors.As(err, &loss) {
			t.Fatalf("flush error %v, want *DirtyLossError", err)
		}
		if loss.Lines != 1 || loss.Cause == nil {
			t.Fatalf("loss = %+v", loss)
		}
		// Reported once: the next barrier is clean.
		backing.failWrites = nil
		if err := c.Flush(p); err != nil {
			t.Fatalf("second barrier: %v", err)
		}
	})
	if s := c.Stats(); s.LostLines != 1 {
		t.Errorf("lost lines %d, want 1", s.LostLines)
	}
}

func TestLoseDirtyModelsCrash(t *testing.T) {
	e, _, c := rig(t, false, Config{Bytes: 1 << 20, Mode: WriteBack})
	run(t, e, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			c.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: int64(i) * 4096, Size: 4096}).Wait(p)
		}
		loss := c.LoseDirty()
		if loss == nil || loss.Lines != 4 {
			t.Fatalf("LoseDirty = %+v, want 4 lines", loss)
		}
		if c.LostDirty() == nil {
			t.Fatal("loss not sticky")
		}
		// The next barrier reports it as a typed error, then clears.
		var typed *DirtyLossError
		if err := c.Flush(p); !errors.As(err, &typed) {
			t.Fatalf("barrier after crash = %v, want *DirtyLossError", err)
		}
		if err := c.Flush(p); err != nil {
			t.Fatalf("loss reported twice: %v", err)
		}
	})
	if c.LoseDirty() != nil {
		t.Error("clean cache reported loss")
	}
}

func TestHitPathAllocationFree(t *testing.T) {
	e, _, c := rig(t, false, Config{Bytes: 1 << 20})
	run(t, e, func(p *sim.Proc) {
		read(p, c, 0, 4096) // fill
	})
	if got := testing.AllocsPerRun(200, func() {
		if !c.tryReadHit(0, 4096, nil) {
			t.Fatal("warm line missed")
		}
	}); got != 0 {
		t.Errorf("hit path allocates %.1f/op, want 0", got)
	}
}

// gateBdev forwards reads but parks writes while gated, so tests can
// control backing write completion order (and inject completion-time
// failures) to exercise flusher/write-through races.
type gateBdev struct {
	bdev.Device
	e    *sim.Engine
	gate bool
	held []heldWrite
}

type heldWrite struct {
	req *ssd.Request
	out *sim.Future[ssd.Result]
}

func (d *gateBdev) Submit(req *ssd.Request) *sim.Future[ssd.Result] {
	if d.gate && req.Op == ssd.OpWrite {
		out := sim.NewFuture[ssd.Result](d.e)
		d.held = append(d.held, heldWrite{req: req, out: out})
		return out
	}
	return d.Device.Submit(req)
}

// release completes the i-th held write: with err it fails at completion
// time; otherwise it forwards to the real device and mirrors its result.
func (d *gateBdev) release(i int, err error) {
	h := d.held[i]
	if err != nil {
		h.out.Resolve(ssd.Result{Err: err})
		return
	}
	d.Device.Submit(h.req).OnResolve(h.out.Resolve)
}

// gateRig builds a retained write-back cache over a write-gating device.
func gateRig(t *testing.T, cfg Config) (*sim.Engine, *gateBdev, *Cache) {
	t.Helper()
	e := sim.NewEngine(11)
	params := model.DefaultSSD()
	params.JitterFrac = 0
	params.StallProb = 0
	g := &gateBdev{Device: bdev.NewSimSSD(e, "nvme0", 64<<20, params, true, 512), e: e}
	cfg.Retain = true
	return e, g, New(e, g, cfg)
}

func TestMultiLineWriteSurvivesSetExhaustion(t *testing.T) {
	// Regression: committing a multi-line write whose lines hash to the
	// same set could consume the set's last clean way on the first line
	// and then index lines[-1] for the second. The commit must instead
	// degrade the whole write to write-through.
	e, backing, c := rig(t, true, Config{Bytes: 64 << 10, Shards: 1, Ways: 8, Mode: WriteBack, MaxDirtyFrac: 1})
	// Find an aligned line pair mapping to one set, plus seven more lines
	// in that set to dirty every other way.
	pair := int64(-1)
	for ln := int64(0); pair < 0; ln++ {
		if c.setBase(ln) == c.setBase(ln+1) {
			pair = ln
		}
	}
	var fills []int64
	for ln := int64(0); len(fills) < 7; ln++ {
		if ln != pair && ln != pair+1 && c.setBase(ln) == c.setBase(pair) {
			fills = append(fills, ln)
		}
	}
	payload := bytes.Repeat([]byte{0xC3}, 8192)
	run(t, e, func(p *sim.Proc) {
		for k, ln := range fills {
			data := bytes.Repeat([]byte{byte(k + 1)}, 4096)
			if res := write(p, c, ln*4096, data); res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		if got := c.Stats().WriteBacks; got != 7 {
			t.Fatalf("absorbed %d of 7 set-filling writes", got)
		}
		// Both lines of this write map to the now 7/8-dirty set.
		if res := write(p, c, pair*4096, payload); res.Err != nil {
			t.Fatal(res.Err)
		}
		if backing.writes == 0 {
			t.Fatal("exhausted-set write never degraded to the backing device")
		}
		res := read(p, c, pair*4096, 8192)
		if res.Err != nil || !bytes.Equal(res.Data, payload) {
			t.Fatal("bytes diverged after degraded multi-line write")
		}
	})
	if s := c.Stats(); s.WriteThroughs == 0 {
		t.Errorf("set exhaustion must degrade to write-through: %+v", s)
	}
}

func TestWriteThroughOrdersBehindInflightFlush(t *testing.T) {
	// Regression: a write-through overlapping a line whose write-back is
	// in flight must not race it — the backing device applies data at
	// completion, so an unordered stale flush could land after the newer
	// write, leaving the device stale behind a clean cache line.
	e, gate, c := gateRig(t, Config{Bytes: 1 << 20, Mode: WriteBack})
	oldData := bytes.Repeat([]byte{0xAA}, 4096)
	newData := bytes.Repeat([]byte{0xBB}, 1024)
	run(t, e, func(p *sim.Proc) {
		if res := write(p, c, 0, oldData); res.Err != nil {
			t.Fatal(res.Err)
		}
		gate.gate = true
		flushFut := c.Submit(&ssd.Request{Op: ssd.OpFlush})
		p.Sleep(time.Microsecond) // barrier captures line 0 and parks on the gated write
		if len(gate.held) != 1 {
			t.Fatalf("barrier submitted %d backing writes, want 1 parked write-back", len(gate.held))
		}
		// Unaligned write-through to the captured line: it must be ordered
		// behind the in-flight write-back instead of racing it.
		wFut := c.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: 0, Size: 1024, Data: newData})
		p.Sleep(time.Microsecond)
		if len(gate.held) != 1 {
			t.Fatal("write-through overtook the in-flight flush write-back")
		}
		if wFut.Resolved() {
			t.Fatal("write-through completed while ordered behind the flush")
		}
		gate.gate = false
		gate.release(0, nil)
		if res := wFut.Wait(p); res.Err != nil {
			t.Fatal(res.Err)
		}
		if res := flushFut.Wait(p); res.Err != nil {
			t.Fatal(res.Err)
		}
		// The backing device must hold the newer bytes.
		res := gate.Device.Submit(&ssd.Request{Op: ssd.OpRead, Offset: 0, Size: 4096}).Wait(p)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !bytes.Equal(res.Data[:1024], newData) || !bytes.Equal(res.Data[1024:], oldData[1024:]) {
			t.Fatal("stale flush write-back clobbered the newer write-through")
		}
		// And the cache must agree with it.
		cres := read(p, c, 0, 4096)
		if cres.Err != nil || !bytes.Equal(cres.Data[:1024], newData) {
			t.Fatal("cache diverged from backing after ordered write-through")
		}
	})
}

func TestCapturedLineRedirtiesWhenWriteThroughLandsUnder(t *testing.T) {
	// The reverse interleaving of the ordering test: a write-through is
	// already in flight when a flush batch captures the (re-dirtied) same
	// line. Whichever backing write lands last, completion of the
	// write-through must re-dirty the captured line so a final re-flush
	// converges the backing device to the cache's bytes.
	e, gate, c := gateRig(t, Config{Bytes: 1 << 20, Mode: WriteBack})
	wtData := bytes.Repeat([]byte{0xBB}, 1024)
	wbData := bytes.Repeat([]byte{0xCC}, 4096)
	run(t, e, func(p *sim.Proc) {
		gate.gate = true
		// Unaligned write-through to a non-resident line parks at the gate.
		wFut := c.Submit(&ssd.Request{Op: ssd.OpWrite, Offset: 0, Size: 1024, Data: wtData})
		p.Sleep(time.Microsecond)
		if len(gate.held) != 1 {
			t.Fatalf("held %d backing writes, want the parked write-through", len(gate.held))
		}
		// Newer absorbed write dirties the line; a barrier captures it.
		if res := write(p, c, 0, wbData); res.Err != nil {
			t.Fatal(res.Err)
		}
		flushFut := c.Submit(&ssd.Request{Op: ssd.OpFlush})
		p.Sleep(time.Microsecond)
		if len(gate.held) != 2 {
			t.Fatalf("held %d backing writes, want write-through + write-back", len(gate.held))
		}
		// The write-through completes while the write-back is in flight:
		// its completion must re-dirty the captured line.
		gate.release(0, nil)
		if res := wFut.Wait(p); res.Err != nil {
			t.Fatal(res.Err)
		}
		if c.Stats().DirtyBytes == 0 {
			t.Fatal("write-through landing under an in-flight write-back did not re-dirty the line")
		}
		// Let the stale write-back land last, then drain the re-flush.
		gate.gate = false
		gate.release(1, nil)
		if res := flushFut.Wait(p); res.Err != nil {
			t.Fatal(res.Err)
		}
		// Backing and cache must agree on the merged bytes.
		want := append(bytes.Repeat([]byte{0xBB}, 1024), bytes.Repeat([]byte{0xCC}, 3072)...)
		bres := gate.Device.Submit(&ssd.Request{Op: ssd.OpRead, Offset: 0, Size: 4096}).Wait(p)
		if bres.Err != nil || !bytes.Equal(bres.Data, want) {
			t.Fatal("backing diverged from cache after racing write-back")
		}
		cres := read(p, c, 0, 4096)
		if cres.Err != nil || !bytes.Equal(cres.Data, want) {
			t.Fatal("cache diverged after racing write-back")
		}
	})
}

func TestFlushFailureRetriesRedirtiedLine(t *testing.T) {
	// Regression: when a write-back fails while the line was re-dirtied
	// with newer acked data, the error path used to invalidate the line,
	// silently discarding the newer write. It must stay resident and
	// dirty so the flusher retries the newer bytes.
	e, gate, c := gateRig(t, Config{Bytes: 1 << 20, Mode: WriteBack})
	oldData := bytes.Repeat([]byte{0x11}, 4096)
	newData := bytes.Repeat([]byte{0x22}, 4096)
	run(t, e, func(p *sim.Proc) {
		if res := write(p, c, 0, oldData); res.Err != nil {
			t.Fatal(res.Err)
		}
		gate.gate = true
		flushFut := c.Submit(&ssd.Request{Op: ssd.OpFlush})
		p.Sleep(time.Microsecond) // barrier parks on the gated write-back
		if len(gate.held) != 1 {
			t.Fatalf("held %d backing writes, want 1", len(gate.held))
		}
		// Newer absorbed write to the same line while its write-back is in
		// flight, then fail that write-back at completion time.
		if res := write(p, c, 0, newData); res.Err != nil {
			t.Fatal(res.Err)
		}
		gate.gate = false
		gate.release(0, errors.New("transient device write fault"))
		if res := flushFut.Wait(p); res.Err != nil {
			t.Fatalf("barrier failed despite a retryable newer version: %v", res.Err)
		}
		// The retried flush carried the newer bytes.
		bres := gate.Device.Submit(&ssd.Request{Op: ssd.OpRead, Offset: 0, Size: 4096}).Wait(p)
		if bres.Err != nil || !bytes.Equal(bres.Data, newData) {
			t.Fatal("newer write lost after failed write-back")
		}
	})
	if s := c.Stats(); s.LostLines != 0 {
		t.Errorf("retryable failure recorded loss: %+v", s)
	}
	if c.LostDirty() != nil {
		t.Error("sticky loss armed despite successful retry")
	}
}

func TestModeParseAndGeometry(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", WriteThrough}, {"wt", WriteThrough}, {"write-back", WriteBack}, {"wb", WriteBack}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	// Tiny capacity still yields a usable (clamped) geometry.
	e, _, c := rig(t, false, Config{Bytes: 4096, Shards: 16, Ways: 8})
	run(t, e, func(p *sim.Proc) {
		if res := read(p, c, 0, 4096); res.Err != nil {
			t.Fatal(res.Err)
		}
	})
	if c.Stats().Bytes < 4096 {
		t.Errorf("capacity %d below one line", c.Stats().Bytes)
	}
}

func TestStatsString(t *testing.T) {
	e, _, c := rig(t, false, Config{Bytes: 1 << 20, Mode: WriteBack})
	_ = e
	s := c.Stats()
	if s.Mode != "write-back" || s.Name == "" {
		t.Errorf("stats identity: %+v", s)
	}
	if fmt.Sprint(WriteThrough) != "write-through" {
		t.Error("mode string")
	}
}

// TestTenantDirtyPartitionThrottlesOnlyThatTenant: with a per-tenant
// dirty fraction configured, a listed tenant's write burst degrades to
// write-through once ITS slice of the absorb budget is full, while the
// shared watermark still has plenty of room — so another tenant's
// writes keep absorbing at cache speed.
func TestTenantDirtyPartitionThrottlesOnlyThatTenant(t *testing.T) {
	// 1 MiB cache, shared dirty watermark 0.5 (512 KiB); greedy gets
	// 1/32 of capacity = 32 KiB = 8 lines before write-through kicks in.
	e, _, c := rig(t, false, Config{
		Bytes: 1 << 20, Mode: WriteBack,
		TenantDirtyFrac: map[string]float64{"greedy": 1.0 / 32},
	})
	data := make([]byte, 4096)
	twrite := func(p *sim.Proc, tenant string, off int64) {
		res := c.Submit(&ssd.Request{
			Op: ssd.OpWrite, Offset: off, Size: len(data), Data: data, Tenant: tenant,
		}).Wait(p)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	run(t, e, func(p *sim.Proc) {
		// Burst 40 distinct greedy lines (160 KiB) back to back: well
		// past the 32 KiB slice, well under the 512 KiB shared bound.
		for i := 0; i < 40; i++ {
			twrite(p, "greedy", int64(i)<<12)
			if got := c.TenantDirty("greedy"); got > 32<<10 {
				t.Fatalf("greedy dirty %d bytes exceeds its 32 KiB slice", got)
			}
		}
		throttled := c.Stats().Throttled
		if throttled == 0 {
			t.Fatal("160 KiB greedy burst never tripped the 32 KiB tenant slice")
		}
		// An unlisted tenant is bounded only by the shared watermark:
		// its writes still absorb, and absorbs don't count as throttles.
		before := c.Stats()
		twrite(p, "polite", 1<<21)
		after := c.Stats()
		if after.WriteBacks != before.WriteBacks+1 {
			t.Errorf("polite write did not absorb: write-backs %d -> %d",
				before.WriteBacks, after.WriteBacks)
		}
		if after.Throttled != throttled {
			t.Errorf("polite write throttled (%d -> %d) despite shared headroom",
				throttled, after.Throttled)
		}
		if got := c.TenantDirty("polite"); got != 4096 {
			t.Errorf("polite dirty attribution = %d, want one 4 KiB line", got)
		}
		// Flush drains everything; per-tenant accounting must return to
		// zero via the same clean path.
		if res := c.Submit(&ssd.Request{Op: ssd.OpFlush}).Wait(p); res.Err != nil {
			t.Fatal(res.Err)
		}
		if got := c.TenantDirty("greedy"); got != 0 {
			t.Errorf("greedy dirty = %d after flush, want 0", got)
		}
	})
}
