// Package integration holds cross-module end-to-end tests: determinism of
// whole experiments, failure propagation from the device to the
// application, cross-fabric data consistency, and multi-tenant isolation.
package integration

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/exp"
	"nvmeoaf/internal/host"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/perf"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/transport"
)

func TestFullExperimentDeterminism(t *testing.T) {
	// The same seed must yield bit-identical results across runs.
	run := func() *exp.Result {
		res, err := exp.Run(exp.Config{
			Kind:    exp.OAF,
			Streams: 2,
			Workload: perf.Workload{
				Seq: false, ReadPct: 70, IOSize: 128 << 10, QueueDepth: 32,
				Warmup: 20 * time.Millisecond, Duration: 100 * time.Millisecond,
			},
			Seed: 1234,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Agg.Throughput.Ops != b.Agg.Throughput.Ops ||
		a.Agg.Throughput.Bytes != b.Agg.Throughput.Bytes {
		t.Fatalf("throughput diverged: %+v vs %+v", a.Agg.Throughput, b.Agg.Throughput)
	}
	if a.Agg.Latency.Sum() != b.Agg.Latency.Sum() || a.Agg.Latency.Max() != b.Agg.Latency.Max() {
		t.Fatalf("latency histograms diverged")
	}
	if a.WireBytes != b.WireBytes || a.SHMBytes != b.SHMBytes {
		t.Fatalf("byte accounting diverged")
	}
	// A different seed must actually change something.
	c, err := exp.Run(exp.Config{
		Kind:    exp.OAF,
		Streams: 2,
		Workload: perf.Workload{
			Seq: false, ReadPct: 70, IOSize: 128 << 10, QueueDepth: 32,
			Warmup: 20 * time.Millisecond, Duration: 100 * time.Millisecond,
		},
		Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Agg.Latency.Sum() == a.Agg.Latency.Sum() {
		t.Fatal("different seeds produced identical latency sums")
	}
}

func TestDeviceFailurePropagatesToApplication(t *testing.T) {
	// An injected bdev failure must surface as an NVMe internal error at
	// the application, and the connection must keep serving afterwards.
	e := sim.NewEngine(1)
	tgt := target.New(e, model.DefaultHost())
	sub, _ := tgt.AddSubsystem("nqn.flaky")
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	inner := bdev.NewSimSSD(e, "d", 1<<30, ssdParams, false, transport.BlockSize)
	sub.AddNamespace(1, bdev.NewFaulty(e, inner, 5, errors.New("media error")))
	fabric := core.NewFabric(e, model.DefaultSHM())
	srv := core.NewServer(e, tgt, core.ServerConfig{
		NQN: "nqn.flaky", Design: core.DesignSHMZeroCopy, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
	})
	link := netsim.NewLoopLink(e, model.Loopback())
	srv.Serve(link.B)
	region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 16)

	fails, oks := 0, 0
	e.Go("app", func(p *sim.Proc) {
		c, err := core.Connect(p, link.A, core.ClientConfig{
			NQN: "nqn.flaky", QueueDepth: 8, Design: core.DesignSHMZeroCopy, Region: region,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			res := c.Submit(p, &transport.IO{Write: i%2 == 0, Offset: int64(i) * 4096, Size: 4096}).Wait(p)
			switch res.Status {
			case nvme.StatusSuccess:
				oks++
			case nvme.StatusInternalError:
				fails++
			default:
				t.Errorf("unexpected status %v", res.Status)
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fails != 5 || oks != 20 {
		t.Fatalf("fails=%d oks=%d, want 5/20", fails, oks)
	}
	// No leaked shared-memory slots after the failures.
	if region.Busy(0) != 0 || region.Busy(1) != 0 {
		t.Fatal("slots leaked after device failures")
	}
}

func TestCrossFabricDataConsistency(t *testing.T) {
	// Data written over NVMe/TCP must read back identically over the
	// adaptive fabric: both transports front the same namespace.
	e := sim.NewEngine(2)
	tgt := target.New(e, model.DefaultHost())
	sub, _ := tgt.AddSubsystem("nqn.shared")
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, true, transport.BlockSize))

	tcpSrv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: "nqn.shared", TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
	tcpLink := netsim.NewLoopLink(e, model.TCP25G())
	tcpSrv.Serve(tcpLink.B)

	fabric := core.NewFabric(e, model.DefaultSHM())
	oafSrv := core.NewServer(e, tgt, core.ServerConfig{
		NQN: "nqn.shared", Design: core.DesignSHMZeroCopy, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
	})
	oafLink := netsim.NewLoopLink(e, model.Loopback())
	oafSrv.Serve(oafLink.B)
	region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 1<<20, 128<<10, 16)

	payload := bytes.Repeat([]byte{0xE7, 0x11}, 64<<10)
	e.Go("app", func(p *sim.Proc) {
		tc, err := tcp.Connect(p, tcpLink.A, tcp.ClientConfig{NQN: "nqn.shared", QueueDepth: 8, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		oc, err := core.Connect(p, oafLink.A, core.ClientConfig{
			NQN: "nqn.shared", QueueDepth: 8, Design: core.DesignSHMZeroCopy, Region: region,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res := tc.Submit(p, &transport.IO{Write: true, Offset: 65536, Size: len(payload), Data: payload}).Wait(p); res.Err() != nil {
			t.Fatal(res.Err())
		}
		into := make([]byte, len(payload))
		res := oc.Submit(p, &transport.IO{Offset: 65536, Size: len(payload), Data: into}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		if !bytes.Equal(res.Data, payload) {
			t.Error("data written over TCP not visible over the adaptive fabric")
		}
		tc.Close()
		oc.Close()
		tc.WaitClosed(p)
		oc.WaitClosed(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEightTenantsConcurrently(t *testing.T) {
	// Eight tenants with private regions and SSDs run mixed workloads
	// concurrently; everything completes and each tenant's payload stays
	// isolated in its own namespace.
	e := sim.NewEngine(3)
	fabric := core.NewFabric(e, model.DefaultSHM())
	const tenants = 8
	type tenant struct {
		client *core.Client
		link   *netsim.Link
	}
	links := make([]*netsim.Link, tenants)
	var devices []*bdev.SSDBdev
	for i := 0; i < tenants; i++ {
		tgt := target.New(e, model.DefaultHost())
		nqn := fmt.Sprintf("nqn.tenant%d", i)
		sub, _ := tgt.AddSubsystem(nqn)
		ssdParams := model.DefaultSSD()
		ssdParams.JitterFrac = 0
		ssdParams.StallProb = 0
		bd := bdev.NewSimSSD(e, nqn, 256<<20, ssdParams, true, transport.BlockSize)
		sub.AddNamespace(1, bd)
		devices = append(devices, bd)
		srv := core.NewServer(e, tgt, core.ServerConfig{
			NQN: nqn, Design: core.DesignSHMZeroCopy, Fabric: fabric,
			TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		})
		links[i] = netsim.NewLoopLink(e, model.Loopback())
		srv.Serve(links[i].B)
	}
	wg := sim.NewWaitGroup(e)
	wg.Add(tenants)
	for i := 0; i < tenants; i++ {
		i := i
		e.Go(fmt.Sprintf("tenant-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			region, _ := fabric.RegionFor(core.DesignSHMZeroCopy, "h", "h", 64<<10, 128<<10, 8)
			c, err := core.Connect(p, links[i].A, core.ClientConfig{
				NQN: fmt.Sprintf("nqn.tenant%d", i), QueueDepth: 8,
				Design: core.DesignSHMZeroCopy, Region: region,
				TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			pattern := bytes.Repeat([]byte{byte(i + 1)}, 64<<10)
			for j := 0; j < 8; j++ {
				if res := c.Submit(p, &transport.IO{Write: true, Offset: int64(j) * (64 << 10), Size: len(pattern), Data: pattern}).Wait(p); res.Err() != nil {
					t.Error(res.Err())
				}
			}
			into := make([]byte, 64<<10)
			res := c.Submit(p, &transport.IO{Offset: 0, Size: len(into), Data: into}).Wait(p)
			if res.Err() != nil {
				t.Error(res.Err())
			} else {
				for _, v := range res.Data {
					if v != byte(i+1) {
						t.Errorf("tenant %d read cross-contaminated data %d", i, v)
						break
					}
				}
			}
			c.Close()
			c.WaitClosed(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoveryThenProbeFlow(t *testing.T) {
	// The full bring-up a real host performs: connect, fetch the
	// discovery log, probe the controller's geometry, then do I/O.
	e := sim.NewEngine(4)
	tgt := target.New(e, model.DefaultHost())
	sub, _ := tgt.AddSubsystem("nqn.prod")
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, false, transport.BlockSize))
	srv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: "nqn.prod", TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
	link := netsim.NewLoopLink(e, model.TCP25G())
	srv.Serve(link.B)
	e.Go("app", func(p *sim.Proc) {
		c, err := tcp.Connect(p, link.A, tcp.ClientConfig{NQN: "nqn.prod", QueueDepth: 8, TP: model.DefaultTCPTransport(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		entries, err := host.Discover(p, c)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].SubNQN != "nqn.prod" {
			t.Fatalf("discovery: %+v", entries)
		}
		ctrl, err := host.Probe(p, c)
		if err != nil {
			t.Fatal(err)
		}
		if ctrl.CapacityBytes() != 1<<30 {
			t.Fatalf("capacity %d", ctrl.CapacityBytes())
		}
		res := ctrl.Submit(p, &transport.IO{Offset: 0, Size: 4096}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		ctrl.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
