// Replicated-namespace chaos: a rolling crash schedule takes every
// seated member down in turn while a client keeps writing through the
// replication layer. The invariants: no acked write is ever lost or
// served stale (read-your-write holds mid-failover and after heal), the
// spare inherits the first dead seat, background re-replication drains
// the backlog, and the whole run replays bit-identically per seed.
package integration

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"nvmeoaf/oaf"
)

const (
	rollExtent  = 64 << 10
	rollOffsets = 16
)

// rollingOutcome captures everything the scenario asserts on, for the
// determinism double-run comparison.
type rollingOutcome struct {
	writes, reads             int64
	downs, ups                int64
	rebuildExtents, rebuilds  int64
	quorumFails, failovers    int64
	degraded                  int64
	stale                     int
	retried, faults, verified int
	postClose                 int // replica/rebuild fault events traced after Close
}

// runRollingCrash drives 120 writes round-robin over 16 extents across a
// 4-seat + 1-spare replicated namespace while members 0, 1, and 2 crash
// in a rolling schedule whose last two outages overlap. Only acked
// writes are held to the no-loss bar; every acked write must read back
// correctly both immediately and after the heal window.
func runRollingCrash(t *testing.T, seed int64) rollingOutcome {
	t.Helper()
	c := oaf.NewCluster(oaf.Config{Seed: seed})
	if err := c.AddHost("app"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		host := fmt.Sprintf("stor%d", i)
		if err := c.AddHost(host); err != nil {
			t.Fatal(err)
		}
		if err := c.AddTarget(host, fmt.Sprintf("nqn.roll.%d", i), oaf.TargetConfig{
			SSDCapacity: 64 << 20, RetainData: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Members 0 and 1 crash in sequence; member 2 goes down while 1 is
	// still out, so the second outage exhausts the spare pool and one
	// seat must ride vacant (degraded writes) until its member revives.
	for _, cr := range []struct {
		member  int
		at, out time.Duration
	}{
		{0, 2 * time.Millisecond, 6 * time.Millisecond},
		{1, 16 * time.Millisecond, 8 * time.Millisecond},
		{2, 20 * time.Millisecond, 6 * time.Millisecond},
	} {
		nqn := fmt.Sprintf("nqn.roll.%d", cr.member)
		if err := c.ScheduleTargetCrash(nqn, cr.at, cr.out); err != nil {
			t.Fatal(err)
		}
	}

	var out rollingOutcome
	var closeNs int64 = -1
	acked := map[int64][]byte{}
	err := c.Run(func(ctx *oaf.Ctx) error {
		rq, err := ctx.On("app").ConnectReplicated("nqn.roll", oaf.ReplicaOptions{
			Replicas: 3, WriteQuorum: 2, Spares: 1, ExtentSize: rollExtent,
		})
		if err != nil {
			return err
		}
		defer rq.Close()
		for i := 0; i < 120; i++ {
			off := int64(i%rollOffsets) * rollExtent
			data := bytes.Repeat([]byte{byte(i%251 + 1)}, 4096)
			// App-level retry: a failed write was never acked and may be
			// re-driven; once Write returns nil the bytes are pinned.
			var werr error
			for attempt := 0; attempt < 40; attempt++ {
				if _, werr = rq.Write(off, data); werr == nil {
					break
				}
				out.retried++
				ctx.Sleep(200 * time.Microsecond)
			}
			if werr != nil {
				return fmt.Errorf("write %d never acked: %w", i, werr)
			}
			acked[off] = data
			res, err := rq.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("read-after-write %d: %w", i, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("write %d: stale read at offset %d", i, off)
			}
			ctx.Sleep(250 * time.Microsecond)
		}
		// Outlast the last restart plus detection and rebuild, then
		// reconcile every acked write one final time (fixed offset order
		// keeps the replay deterministic).
		ctx.Sleep(20 * time.Millisecond)
		for off := int64(0); off < rollOffsets*rollExtent; off += rollExtent {
			data, ok := acked[off]
			if !ok {
				continue
			}
			res, err := rq.Read(off, len(data))
			if err != nil {
				return fmt.Errorf("final read at %d: %w", off, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Errorf("final read at %d lost acked bytes", off)
			}
			out.verified++
		}
		st := rq.Stats()
		out.writes, out.reads = st.Writes, st.Reads
		out.downs, out.ups = st.ReplicaDowns, st.ReplicaUps
		out.rebuildExtents, out.rebuilds = st.RebuildExtents, st.RebuildRounds
		out.quorumFails, out.failovers = st.QuorumFails, st.ReadFailovers
		out.degraded = st.DegradedIOs
		out.stale = st.StaleExtents
		closeNs = int64(ctx.Now())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	out.faults = len(snap.Faults)
	// Pin the fault-event log across teardown: Close fences probes and
	// health feedback, so no replica death/revival or rebuild kick may be
	// traced once the scenario is over — in-flight completions draining
	// through queue close must not masquerade as cluster events.
	for _, ev := range snap.Telemetry.Trace {
		switch ev.Kind {
		case "replica_down", "replica_up", "rebuild_start":
			if closeNs >= 0 && ev.AtNs > closeNs {
				out.postClose++
			}
		}
	}
	return out
}

func TestClusterChaosRollingCrash(t *testing.T) {
	out := runRollingCrash(t, 21)
	if out.verified != rollOffsets {
		t.Errorf("reconciled %d offsets, want %d", out.verified, rollOffsets)
	}
	if out.downs < 3 {
		t.Errorf("replica downs = %d; three crashes went undetected", out.downs)
	}
	if out.ups == 0 {
		t.Error("no restarted member was ever re-admitted")
	}
	if out.rebuildExtents == 0 {
		t.Error("rolling crashes triggered no re-replication copies")
	}
	if out.stale != 0 {
		t.Errorf("rebuild backlog = %d after heal window, want 0", out.stale)
	}
	if out.degraded == 0 {
		t.Error("no write completed degraded; the quorum path was never stressed")
	}
	if out.faults != 6 {
		t.Errorf("fault log has %d events, want 3 crashes + 3 restarts", out.faults)
	}
	if out.postClose != 0 {
		t.Errorf("%d replica/rebuild fault events traced after Close, want 0", out.postClose)
	}
}

func TestClusterChaosRollingCrashIsSeedReproducible(t *testing.T) {
	a := runRollingCrash(t, 33)
	b := runRollingCrash(t, 33)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
