// Determinism regression: the retry-backoff jitter draws from a named,
// engine-seeded RNG stream ("oaf-client-retry" / "tcp-client-retry" /
// "rdma-client-retry"), so two runs of the same fault scenario with the
// same seed must produce bit-identical telemetry — not just the same
// headline counters, but every histogram percentile and trace event.
// A stray time-seeded or global RNG anywhere on the recovery path shows
// up here as a snapshot diff.
package integration

import (
	"encoding/json"
	"testing"
	"time"

	"nvmeoaf/internal/core"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
)

// runCrashSnapshot replays the crash/restart scenario under heavy retry
// pressure and returns the full telemetry snapshot.
func runCrashSnapshot(t *testing.T, seed int64) telemetry.Snapshot {
	t.Helper()
	rig := newChaosRig(t, seed, core.DesignTCP, false, nil)
	rig.inj.CrashTarget(rig.srv, 2*time.Millisecond, 3*time.Millisecond)
	rig.e.Go("app", func(p *sim.Proc) {
		cfg := rig.recoveryClient(core.DesignTCP)
		cfg.KeepAlive = time.Millisecond
		c, err := core.Connect(p, rig.link.A, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mixedUntil(t, p, c, 12*time.Millisecond, 8<<10)
		c.Close()
		c.WaitClosed(p)
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	return rig.tel.Snapshot()
}

func TestChaosTelemetryIsSeedDeterministic(t *testing.T) {
	a := runCrashSnapshot(t, 11)
	b := runCrashSnapshot(t, 11)
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("same-seed runs produced different telemetry:\n%s\n---\n%s", aj, bj)
	}
	// The comparison only means something if the jittered path actually
	// ran: the outage must have forced retries through the backoff RNG.
	if a.Counters["client.retries"] == 0 {
		t.Fatal("scenario produced no retries; jitter path never exercised")
	}
}
