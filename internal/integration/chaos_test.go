// Chaos suite: mixed read/write workloads run to completion under every
// injected fault class — target crash/restart, network partition, loss
// bursts, latency spikes, shared-memory revocation, pool-exhaustion
// shedding, and keep-alive expiry. The invariants, in every scenario:
// the engine drains with no deadlock (sim's deadlock detector doubles as
// the no-hang / no-leaked-worker assertion), every submitted command's
// future resolves with success or a typed NVMe error, target pool
// buffers all return, and the recovery counters reconcile.
package integration

import (
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/core"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/shm"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

const chaosNQN = "nqn.chaos"

// chaosRig is a co-located client/target pair with a fault injector.
type chaosRig struct {
	e      *sim.Engine
	srv    *core.Server
	link   *netsim.Link
	fabric *core.Fabric
	region *shm.Region
	inj    *faults.Injector
	tel    *telemetry.Sink
}

func newChaosRig(t *testing.T, seed int64, design core.Design, retain bool, srvMut func(*core.ServerConfig)) *chaosRig {
	t.Helper()
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(chaosNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, retain, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	fabric := core.NewFabric(e, model.DefaultSHM())
	tel := telemetry.New()
	fabric.AttachTelemetry(tel)
	cfg := core.ServerConfig{
		NQN: chaosNQN, Design: design, Fabric: fabric,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		Telemetry: tel,
	}
	if srvMut != nil {
		srvMut(&cfg)
	}
	srv := core.NewServer(e, tgt, cfg)
	link := netsim.NewLoopLink(e, model.Loopback())
	srv.Serve(link.B)
	var region *shm.Region
	if design.UsesSHM() {
		r, err := fabric.RegionFor(design, "h", "h", 1<<20, 4<<10, 16)
		if err != nil {
			t.Fatal(err)
		}
		region = r
	}
	return &chaosRig{e: e, srv: srv, link: link, fabric: fabric, region: region, inj: faults.NewInjector(e), tel: tel}
}

// recoveryClient returns a ClientConfig with the failure-recovery
// machinery switched on.
func (r *chaosRig) recoveryClient(design core.Design) core.ClientConfig {
	return core.ClientConfig{
		NQN: chaosNQN, QueueDepth: 16, Design: design, Region: r.region,
		TP: model.DefaultTCPTransport(), Host: model.DefaultHost(),
		CommandTimeout: 1500 * time.Microsecond,
		MaxRetries:     10,
		RetryBackoff:   200 * time.Microsecond,
		Telemetry:      r.tel,
	}
}

// mixedUntil submits waves of mixed reads and writes until the virtual
// clock passes deadline, classifying every resolution. Unknown statuses
// fail the test: under fault injection a command may succeed or fail
// with a typed transient error, nothing else.
func mixedUntil(t *testing.T, p *sim.Proc, c *core.Client, deadline time.Duration, size int) (total, oks, typed int) {
	t.Helper()
	const wave = 8
	flushWave := func(futs []*sim.Future[*transport.Result]) {
		for _, f := range futs {
			res := f.Wait(p)
			switch res.Status {
			case nvme.StatusSuccess:
				oks++
			case nvme.StatusTransientTransport, nvme.StatusCommandInterrupted, nvme.StatusDataTransferErr:
				typed++
			default:
				t.Errorf("unexpected status %v", res.Status)
			}
		}
	}
	end := sim.Time(deadline)
	for p.Now() < end || total == 0 {
		futs := make([]*sim.Future[*transport.Result], 0, wave)
		for i := 0; i < wave; i++ {
			io := &transport.IO{
				Write:  (total+i)%3 == 0,
				Offset: int64((total+i)%64) * int64(size),
				Size:   size,
			}
			futs = append(futs, c.Submit(p, io))
		}
		total += wave
		flushWave(futs)
	}
	return total, oks, typed
}

// chaosOutcome captures everything a scenario asserts on, for the
// determinism double-run comparison.
type chaosOutcome struct {
	total, oks, typed                        int
	retries, timeouts, failovers, reconnects int64
	kaExpirations, shed                      int64
}

// checkInvariants asserts the universal chaos-suite invariants.
func (r *chaosRig) checkInvariants(t *testing.T, c *core.Client, out chaosOutcome) {
	t.Helper()
	if out.oks+out.typed != out.total {
		t.Errorf("resolved %d+%d of %d commands", out.oks, out.typed, out.total)
	}
	// Every deadline expiry either re-drove the command or burned one of
	// its attempts into the final typed failure.
	if out.retries+int64(out.typed) < out.timeouts {
		t.Errorf("counters do not reconcile: retries=%d typed=%d timeouts=%d",
			out.retries, out.typed, out.timeouts)
	}
	if got := r.srv.Pool().InUse(); got != 0 {
		t.Errorf("target pool leaked %d buffers", got)
	}
	// The observability layer must agree with the transport's own
	// accounting: every recovery event lands in the shared sink exactly
	// once. (The rig has one client and one server on one sink, so the
	// aggregate counters reconcile exactly.)
	snap := r.tel.Snapshot()
	for _, chk := range []struct {
		name string
		want int64
	}{
		{"client.retries", c.Retries},
		{"client.timeouts", c.Timeouts},
		{"client.failovers", c.Failovers},
		{"client.reconnects", c.Reconnects},
		{"client.completions", c.Completed},
		{"server.shed", r.srv.Shed},
		{"server.kato_expirations", r.srv.KAExpirations},
		{"server.stale_msgs", r.srv.StaleMsgs},
	} {
		if got := snap.Counters[chk.name]; got != chk.want {
			t.Errorf("telemetry %s = %d, transport says %d", chk.name, got, chk.want)
		}
	}
}

// runCrashScenario is the target crash/restart scenario, factored out so
// the determinism test can replay it.
func runCrashScenario(t *testing.T, seed int64) chaosOutcome {
	t.Helper()
	rig := newChaosRig(t, seed, core.DesignTCP, false, nil)
	rig.inj.CrashTarget(rig.srv, 3*time.Millisecond, 3*time.Millisecond)
	var out chaosOutcome
	var cl *core.Client
	rig.e.Go("app", func(p *sim.Proc) {
		cfg := rig.recoveryClient(core.DesignTCP)
		cfg.KeepAlive = time.Millisecond
		c, err := core.Connect(p, rig.link.A, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cl = c
		out.total, out.oks, out.typed = mixedUntil(t, p, c, 15*time.Millisecond, 8<<10)
		c.Close()
		c.WaitClosed(p)
		out.retries, out.timeouts = c.Retries, c.Timeouts
		out.failovers, out.reconnects = c.Failovers, c.Reconnects
	})
	// Run to full drain: a deadlock error here means a command hung or a
	// worker leaked.
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	out.kaExpirations, out.shed = rig.srv.KAExpirations, rig.srv.Shed
	rig.checkInvariants(t, cl, out)
	return out
}

func TestChaosTargetCrashRestart(t *testing.T) {
	out := runCrashScenario(t, 1)
	if out.timeouts == 0 {
		t.Error("a 3ms target outage produced no command timeouts")
	}
	if out.reconnects == 0 {
		t.Error("client never reconnected across the crash")
	}
	if out.oks == 0 {
		t.Error("no command succeeded after the restart")
	}
	if out.typed > out.total/2 {
		t.Errorf("%d of %d commands failed; recovery should save most", out.typed, out.total)
	}
}

func TestChaosCrashScenarioIsSeedReproducible(t *testing.T) {
	a := runCrashScenario(t, 7)
	b := runCrashScenario(t, 7)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestChaosNetworkPartitionHeals(t *testing.T) {
	rig := newChaosRig(t, 1, core.DesignTCP, false, nil)
	rig.inj.Partition(rig.link, 2*time.Millisecond, 3*time.Millisecond)
	var out chaosOutcome
	var cl *core.Client
	rig.e.Go("app", func(p *sim.Proc) {
		c, err := core.Connect(p, rig.link.A, rig.recoveryClient(core.DesignTCP))
		if err != nil {
			t.Fatal(err)
		}
		cl = c
		out.total, out.oks, out.typed = mixedUntil(t, p, c, 12*time.Millisecond, 8<<10)
		c.Close()
		c.WaitClosed(p)
		out.retries, out.timeouts = c.Retries, c.Timeouts
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	rig.checkInvariants(t, cl, out)
	if out.timeouts == 0 {
		t.Error("a 3ms partition produced no timeouts")
	}
	if rig.link.A.Drops == 0 {
		t.Error("partition dropped nothing; fault never applied")
	}
	if out.oks == 0 {
		t.Error("no command succeeded after the heal")
	}
}

func TestChaosLossBurstAndLatencySpike(t *testing.T) {
	rig := newChaosRig(t, 1, core.DesignTCP, false, nil)
	rig.inj.LossBurst(rig.link, 1*time.Millisecond, 3*time.Millisecond, 0.2, 300*time.Microsecond)
	rig.inj.LatencySpike(rig.link, 5*time.Millisecond, 2*time.Millisecond, 400*time.Microsecond)
	var out chaosOutcome
	var cl *core.Client
	rig.e.Go("app", func(p *sim.Proc) {
		c, err := core.Connect(p, rig.link.A, rig.recoveryClient(core.DesignTCP))
		if err != nil {
			t.Fatal(err)
		}
		cl = c
		out.total, out.oks, out.typed = mixedUntil(t, p, c, 10*time.Millisecond, 8<<10)
		c.Close()
		c.WaitClosed(p)
		out.retries, out.timeouts = c.Retries, c.Timeouts
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	rig.checkInvariants(t, cl, out)
	if rig.link.A.Retransmits+rig.link.B.Retransmits == 0 {
		t.Error("loss burst caused no retransmits; fault never applied")
	}
	// RTO recovery plus retry machinery must save everything: loss and
	// latency are degradations, not failures.
	if out.oks != out.total {
		t.Errorf("loss/latency failed %d of %d commands", out.typed, out.total)
	}
}

// TestChaosRegionRevocationMidStreamRead revokes the shared-memory
// mapping while a large chunked read is moving through it slot by slot:
// the target must fail over to the TCP data path mid-command and the
// read must complete with intact data.
func TestChaosRegionRevocationMidStreamRead(t *testing.T) {
	rig := newChaosRig(t, 1, core.DesignSHMLockFree, true, nil)
	const size = 512 << 10 // 128 stop-and-wait chunks: the revocation lands mid-train
	seed := make([]byte, size)
	for i := range seed {
		seed[i] = byte(i % 251)
	}
	var cl *core.Client
	rig.e.Go("app", func(p *sim.Proc) {
		c, err := core.Connect(p, rig.link.A, rig.recoveryClient(core.DesignSHMLockFree))
		if err != nil {
			t.Fatal(err)
		}
		cl = c
		if !c.SHMEnabled() {
			t.Fatal("co-located pair did not negotiate shared memory")
		}
		// Seed the device over the healthy shared-memory path.
		if res := c.Submit(p, &transport.IO{Write: true, Size: size, Data: seed}).Wait(p); res.Status.IsError() {
			t.Fatalf("seed write failed: %v", res.Status)
		}
		// Revoke mid-read: the transfer below takes hundreds of
		// microseconds of per-chunk round trips.
		rig.inj.RevokeRegion(rig.region, 100*time.Microsecond)
		buf := make([]byte, size)
		res := c.Submit(p, &transport.IO{Size: size, Data: buf}).Wait(p)
		if res.Status.IsError() {
			t.Fatalf("read across revocation failed: %v", res.Status)
		}
		if !equalBytes(buf, seed) {
			t.Fatal("read across revocation returned corrupt data")
		}
		if c.SHMEnabled() {
			t.Error("client still on shared memory after revocation")
		}
		// The fabric keeps serving over TCP.
		if res := c.Submit(p, &transport.IO{Size: 8 << 10, Data: make([]byte, 8<<10)}).Wait(p); res.Status.IsError() {
			t.Errorf("post-failover read failed: %v", res.Status)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	if cl.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", cl.Failovers)
	}
	if got := rig.srv.Pool().InUse(); got != 0 {
		t.Errorf("target pool leaked %d buffers", got)
	}
}

// TestChaosRegionRevocationMidStreamWrite revokes the region while a
// chunked write is moving payload through it: the target fails the write
// with a retryable typed error and the client re-drives it over TCP.
func TestChaosRegionRevocationMidStreamWrite(t *testing.T) {
	rig := newChaosRig(t, 1, core.DesignSHMLockFree, true, nil)
	const size = 512 << 10
	seed := make([]byte, size)
	for i := range seed {
		seed[i] = byte(i % 127)
	}
	var cl *core.Client
	rig.e.Go("app", func(p *sim.Proc) {
		c, err := core.Connect(p, rig.link.A, rig.recoveryClient(core.DesignSHMLockFree))
		if err != nil {
			t.Fatal(err)
		}
		cl = c
		rig.inj.RevokeRegion(rig.region, 100*time.Microsecond)
		if res := c.Submit(p, &transport.IO{Write: true, Size: size, Data: seed}).Wait(p); res.Status.IsError() {
			t.Fatalf("write across revocation failed: %v", res.Status)
		}
		// Read back over the failed-over TCP path and verify content.
		buf := make([]byte, size)
		if res := c.Submit(p, &transport.IO{Size: size, Data: buf}).Wait(p); res.Status.IsError() {
			t.Fatalf("verification read failed: %v", res.Status)
		} else if !equalBytes(buf, seed) {
			t.Fatal("write across revocation persisted corrupt data")
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	if cl.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", cl.Failovers)
	}
	if cl.Retries == 0 {
		t.Error("mid-stream write revocation caused no retry; the TCP re-drive never happened")
	}
	if got := rig.srv.Pool().InUse(); got != 0 {
		t.Errorf("target pool leaked %d buffers", got)
	}
}

// TestChaosShedUnderPoolExhaustion bounds the buffer-wait queue so the
// target sheds load with StatusCommandInterrupted instead of queueing
// without limit; shed commands retry and eventually complete.
func TestChaosShedUnderPoolExhaustion(t *testing.T) {
	rig := newChaosRig(t, 1, core.DesignTCP, false, func(cfg *core.ServerConfig) {
		cfg.TP.DataBuffers = 4 // two 2-chunk commands fill the pool
		cfg.MaxBufferWaiters = 1
	})
	var out chaosOutcome
	var cl *core.Client
	rig.e.Go("app", func(p *sim.Proc) {
		cfg := rig.recoveryClient(core.DesignTCP)
		cfg.CommandTimeout = 3 * time.Millisecond // sheds answer fast; timeouts are backup
		c, err := core.Connect(p, rig.link.A, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cl = c
		size := 2 * rig.srv.Pool().ElemSize()
		out.total, out.oks, out.typed = mixedUntil(t, p, c, 5*time.Millisecond, size)
		c.Close()
		c.WaitClosed(p)
		out.retries, out.timeouts = c.Retries, c.Timeouts
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	out.shed = rig.srv.Shed
	rig.checkInvariants(t, cl, out)
	if out.shed == 0 {
		t.Error("pool exhaustion never shed; backpressure path unexercised")
	}
	if out.oks == 0 {
		t.Error("no command succeeded under shedding")
	}
}

// TestChaosKATOTeardownOnAFPath mirrors the TCP transport's keep-alive
// semantics on the adaptive fabric: a silent connection expires (and the
// target re-listens, so the client's next command still works); a
// keep-alive-sending client survives.
func TestChaosKATOTeardownOnAFPath(t *testing.T) {
	run := func(keepAlive time.Duration) (int64, bool) {
		rig := newChaosRig(t, 1, core.DesignTCP, false, func(cfg *core.ServerConfig) {
			cfg.KATO = 2 * time.Millisecond
		})
		ioOK := false
		rig.e.Go("app", func(p *sim.Proc) {
			cfg := rig.recoveryClient(core.DesignTCP)
			cfg.KeepAlive = keepAlive
			c, err := core.Connect(p, rig.link.A, cfg)
			if err != nil {
				t.Fatal(err)
			}
			p.Sleep(10 * time.Millisecond) // idle through several KATO windows
			res := c.Submit(p, &transport.IO{Size: 8 << 10}).Wait(p)
			ioOK = !res.Status.IsError()
			c.Close()
			c.WaitClosed(p)
		})
		if err := rig.e.Run(); err != nil {
			t.Fatalf("engine did not drain cleanly: %v", err)
		}
		return rig.srv.KAExpirations, ioOK
	}
	expirations, ioOK := run(0)
	if expirations == 0 {
		t.Error("silent AF connection never hit the KATO watchdog")
	}
	if !ioOK {
		t.Error("I/O after KATO teardown failed; target did not re-listen")
	}
	expirations, ioOK = run(800 * time.Microsecond)
	if expirations != 0 {
		t.Error("keep-alive-sending client hit the KATO watchdog")
	}
	if !ioOK {
		t.Error("I/O on the kept-alive connection failed")
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
