package integration

import (
	"sync"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/cache"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/tcp"
	"nvmeoaf/internal/transport"
)

// TestLiveKnobSettersRaceFree drives a TCP client workload on the
// engine goroutine while a foreign goroutine hammers every live-tuning
// setter the whole time. Run under -race (the repo's verify script
// does), this pins the contract that all hot-path knob reads go through
// atomics: a plain field read anywhere on the submit/reap/chunk/cache
// path turns this test into a detector report.
func TestLiveKnobSettersRaceFree(t *testing.T) {
	e := sim.NewEngine(11)
	tgt := target.New(e, model.DefaultHost())
	sub, _ := tgt.AddSubsystem("nqn.race")
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	backing := bdev.NewSimSSD(e, "d", 1<<30, ssdParams, false, transport.BlockSize)
	ca := cache.New(e, backing, cache.Config{Bytes: 4 << 20, Mode: cache.WriteBack})
	sub.AddNamespace(1, ca)

	tp := model.DefaultTCPTransport()
	tp.BatchSize = 4
	srv := tcp.NewServer(e, tgt, tcp.ServerConfig{NQN: "nqn.race", TP: tp, Host: model.DefaultHost()})
	link := netsim.NewLoopLink(e, model.TCP25G())
	srv.Serve(link.B)

	var mu sync.Mutex // publishes the client pointer to the hammer goroutine
	var cl *tcp.Client
	e.Go("app", func(p *sim.Proc) {
		c, err := tcp.Connect(p, link.A, tcp.ClientConfig{
			NQN: "nqn.race", QueueDepth: 32, TP: tp, Host: model.DefaultHost(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		cl = c
		mu.Unlock()
		for i := 0; i < 1000; i++ {
			size := 4096
			if i%7 == 0 {
				size = 256 << 10 // exercise the chunking path too
			}
			io := &transport.IO{Write: i%3 == 0, Offset: int64(i%512) * 4096, Size: size}
			if res := c.Submit(p, io).Wait(p); res.Err() != nil {
				t.Error(res.Err())
				return
			}
		}
		c.Close()
		c.WaitClosed(p)
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			mu.Lock()
			c := cl
			mu.Unlock()
			if c != nil {
				c.SetBatchSize(1 + i%16)
				_ = c.LiveBatchSize()
				c.SetPollBudget(time.Duration(i%50) * time.Microsecond)
				_ = c.LivePollBudget()
				c.SetQDTarget(1 + i%32)
				_ = c.QDTarget()
				c.SetChunkSize((16 << 10) << (i % 5))
				_ = c.LiveChunkSize()
			}
			srv.SetBatchSize(1 + (i+3)%16)
			_ = srv.LiveBatchSize()
			ca.SetMaxDirtyFrac(0.1 + float64(i%9)*0.1)
			_ = ca.MaxDirtyBytes()
			ca.SetBypassBytes((32 << 10) << (i % 4))
			_ = ca.LiveBypassBytes()
			// Yield so the engine goroutine keeps making progress; the
			// detector needs overlap, not volume.
			time.Sleep(20 * time.Microsecond)
		}
	}()

	err := e.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
}
