// RDMA recovery parity: the session-engine extraction gives the RDMA
// binding the same telemetry, keep-alive, deadline/retry, and KATO
// machinery the adaptive and TCP transports have. These tests hold the
// RDMA path to the same chaos-suite invariants — every command resolves
// with success or a typed transient error, the engine drains without
// deadlock, and the telemetry sink agrees with the transport's own
// recovery counters.
package integration

import (
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/faults"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/rdma"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

type rdmaRig struct {
	e    *sim.Engine
	srv  *rdma.Server
	link *netsim.Link
	inj  *faults.Injector
	tel  *telemetry.Sink
}

func newRDMARig(t *testing.T, seed int64, kato time.Duration) *rdmaRig {
	t.Helper()
	e := sim.NewEngine(seed)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(chaosNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "d", 1<<30, ssdParams, false, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	prm := model.RDMA56G()
	prm.MemRegWarmOps = 0.001 // decays immediately: no registration tail
	prm.MemRegFloorProb = 0
	tel := telemetry.New()
	srv := rdma.NewServer(e, tgt, rdma.ServerConfig{
		NQN: chaosNQN, Params: prm, Host: model.DefaultHost(),
		KATO: kato, Telemetry: tel,
	})
	link := netsim.NewLoopLink(e, rdma.LinkParams(prm))
	srv.Serve(link.B)
	return &rdmaRig{e: e, srv: srv, link: link, inj: faults.NewInjector(e), tel: tel}
}

// rdmaMixedUntil is mixedUntil for the RDMA client type.
func rdmaMixedUntil(t *testing.T, p *sim.Proc, c *rdma.Client, deadline time.Duration, size int) (total, oks, typed int) {
	t.Helper()
	const wave = 8
	end := sim.Time(deadline)
	for p.Now() < end || total == 0 {
		futs := make([]*sim.Future[*transport.Result], 0, wave)
		for i := 0; i < wave; i++ {
			futs = append(futs, c.Submit(p, &transport.IO{
				Write:  (total+i)%3 == 0,
				Offset: int64((total+i)%64) * int64(size),
				Size:   size,
			}))
		}
		total += wave
		for _, f := range futs {
			switch res := f.Wait(p); res.Status {
			case nvme.StatusSuccess:
				oks++
			case nvme.StatusTransientTransport, nvme.StatusCommandInterrupted, nvme.StatusDataTransferErr:
				typed++
			default:
				t.Errorf("unexpected status %v", res.Status)
			}
		}
	}
	return total, oks, typed
}

// TestChaosRDMACrashRestartParity runs the target crash/restart scenario
// over RDMA with the full recovery stack on — the scenario the RDMA
// binding could not survive before the extraction (it had no deadlines,
// retries, keep-alive, or reconnect).
func TestChaosRDMACrashRestartParity(t *testing.T) {
	rig := newRDMARig(t, 1, 0)
	rig.inj.CrashTarget(rig.srv, 3*time.Millisecond, 3*time.Millisecond)
	var cl *rdma.Client
	var total, oks, typed int
	rig.e.Go("app", func(p *sim.Proc) {
		c, err := rdma.Connect(p, rig.link.A, rdma.ClientConfig{
			NQN: chaosNQN, QueueDepth: 16,
			Params: func() model.RDMAParams {
				prm := model.RDMA56G()
				prm.MemRegWarmOps = 0.001
				prm.MemRegFloorProb = 0
				return prm
			}(),
			Host:           model.DefaultHost(),
			CommandTimeout: 1500 * time.Microsecond,
			MaxRetries:     10,
			RetryBackoff:   200 * time.Microsecond,
			KeepAlive:      time.Millisecond,
			Telemetry:      rig.tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl = c
		total, oks, typed = rdmaMixedUntil(t, p, c, 15*time.Millisecond, 8<<10)
		c.Close()
		c.WaitClosed(p)
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	if oks+typed != total {
		t.Errorf("resolved %d+%d of %d commands", oks, typed, total)
	}
	if cl.Timeouts == 0 {
		t.Error("a 3ms outage produced no command timeouts on RDMA")
	}
	if cl.Reconnects == 0 {
		t.Error("RDMA client never reconnected across the crash")
	}
	if oks == 0 {
		t.Error("no command succeeded after restart")
	}
	// Parity with the adaptive/TCP chaos invariant: every recovery event
	// lands in the shared sink exactly once.
	snap := rig.tel.Snapshot()
	for _, chk := range []struct {
		name string
		want int64
	}{
		{"client.retries", cl.Retries},
		{"client.timeouts", cl.Timeouts},
		{"client.reconnects", cl.Reconnects},
		{"client.completions", cl.Completed},
	} {
		if got := snap.Counters[chk.name]; got != chk.want {
			t.Errorf("telemetry %s = %d, transport says %d", chk.name, got, chk.want)
		}
	}
}

// TestChaosRDMAKATOExpiry: an RDMA client with keep-alive off goes idle
// past the target's KATO; the engine's watchdog (new to RDMA) must tear
// the connection down and count the expiry, and a second client with
// keep-alive on must survive the same idle window.
func TestChaosRDMAKATOExpiry(t *testing.T) {
	prm := model.RDMA56G()
	prm.MemRegWarmOps = 0.001
	prm.MemRegFloorProb = 0
	run := func(keepAlive time.Duration) int64 {
		rig := newRDMARig(t, 1, 2*time.Millisecond)
		rig.e.Go("app", func(p *sim.Proc) {
			c, err := rdma.Connect(p, rig.link.A, rdma.ClientConfig{
				NQN: chaosNQN, QueueDepth: 4, Params: prm,
				Host: model.DefaultHost(), KeepAlive: keepAlive,
				CommandTimeout: 1500 * time.Microsecond,
				MaxRetries:     10,
				RetryBackoff:   200 * time.Microsecond,
				Telemetry:      rig.tel,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res := c.Submit(p, &transport.IO{Write: true, Size: 4096, NoFill: true}).Wait(p); res.Err() != nil {
				t.Fatalf("pre-idle write: %v", res.Err())
			}
			p.Sleep(10 * time.Millisecond) // idle through several KATO windows
			// After the idle gap the connection either survived
			// (keep-alive) or was torn down; the recovery stack must get
			// this I/O through either way, as on the TCP path.
			if res := c.Submit(p, &transport.IO{Offset: 0, Size: 4096}).Wait(p); res.Err() != nil {
				t.Errorf("post-idle read (keepAlive=%v): %v", keepAlive, res.Err())
			}
			c.Close()
			c.WaitClosed(p)
		})
		if err := rig.e.Run(); err != nil {
			t.Fatalf("engine did not drain cleanly: %v", err)
		}
		return rig.srv.KAExpirations
	}
	if exp := run(0); exp == 0 {
		t.Error("idle RDMA connection did not trip the KATO watchdog")
	}
	if exp := run(500 * time.Microsecond); exp != 0 {
		t.Error("kept-alive RDMA connection expired anyway")
	}
}

// TestChaosRDMABatchTelemetryParity: doorbell batching plus telemetry on
// the RDMA binding — batch-size histograms and submit counters must
// populate, and batched submission must complete everything.
func TestChaosRDMABatchTelemetryParity(t *testing.T) {
	rig := newRDMARig(t, 1, 0)
	prm := model.RDMA56G()
	prm.MemRegWarmOps = 0.001
	prm.MemRegFloorProb = 0
	rig.e.Go("app", func(p *sim.Proc) {
		c, err := rdma.Connect(p, rig.link.A, rdma.ClientConfig{
			NQN: chaosNQN, QueueDepth: 32, Params: prm,
			Host: model.DefaultHost(), BatchSize: 8, Telemetry: rig.tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		ios := make([]*transport.IO, 64)
		for i := range ios {
			ios[i] = &transport.IO{Write: i%2 == 0, Offset: int64(i) * 4096, Size: 4096, NoFill: true}
		}
		futs := c.SubmitBatch(p, ios)
		for i, f := range futs {
			if res := f.Wait(p); res.Err() != nil {
				t.Fatalf("batched io %d: %v", i, res.Err())
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := rig.e.Run(); err != nil {
		t.Fatalf("engine did not drain cleanly: %v", err)
	}
	snap := rig.tel.Snapshot()
	h, ok := snap.Histograms["batch.submit_size"]
	if !ok || h.Count == 0 {
		t.Fatal("RDMA batching recorded no batch-size samples")
	}
	if h.Max < 2 {
		t.Errorf("batch-size max %d: doorbell coalescing never formed a train", h.Max)
	}
	if got := snap.Counters["client.completions"]; got != 64 {
		t.Errorf("client.completions = %d, want 64", got)
	}
}
