package rdma

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/bdev"
	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

const testNQN = "nqn.2022-06.io.oaf:rdmasub"

type rig struct {
	e    *sim.Engine
	link *netsim.Link
	srv  *Server
}

func newRig(t *testing.T, retain bool, params model.RDMAParams) *rig {
	t.Helper()
	e := sim.NewEngine(2)
	tgt := target.New(e, model.DefaultHost())
	sub, err := tgt.AddSubsystem(testNQN)
	if err != nil {
		t.Fatal(err)
	}
	ssdParams := model.DefaultSSD()
	ssdParams.JitterFrac = 0
	ssdParams.StallProb = 0
	if _, err := sub.AddNamespace(1, bdev.NewSimSSD(e, "nvme0", 1<<30, ssdParams, retain, transport.BlockSize)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e, tgt, ServerConfig{NQN: testNQN, Params: params, Host: model.DefaultHost()})
	link := netsim.NewLoopLink(e, LinkParams(params))
	srv.Serve(link.B)
	return &rig{e: e, link: link, srv: srv}
}

func noRegParams() model.RDMAParams {
	p := model.RDMA56G()
	p.MemRegWarmOps = 0.001 // decays immediately
	p.MemRegFloorProb = 0
	return p
}

func TestReadWriteRoundTrip(t *testing.T) {
	r := newRig(t, true, noRegParams())
	payload := make([]byte, 128<<10)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{NQN: testNQN, QueueDepth: 16, Params: noRegParams(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: len(payload), Data: payload}).Wait(p)
		if res.Err() != nil {
			t.Fatalf("write: %v", res.Err())
		}
		into := make([]byte, len(payload))
		res = c.Submit(p, &transport.IO{Offset: 0, Size: len(payload), Data: into}).Wait(p)
		if res.Err() != nil {
			t.Fatalf("read: %v", res.Err())
		}
		if !bytes.Equal(res.Data, payload) {
			t.Error("payload mismatch over RDMA")
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNoR2TMessages(t *testing.T) {
	// RDMA direct data placement: a large write is exactly one client
	// message (capsule+payload), with one response back.
	r := newRig(t, false, noRegParams())
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{NQN: testNQN, QueueDepth: 4, Params: noRegParams(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: 512 << 10}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	// ICReq + connect + write capsule + term = 4 client messages.
	if got := r.link.A.MsgsSent; got != 4 {
		t.Fatalf("client sent %d messages, want 4 (no R2T/data split)", got)
	}
	// ICResp + connect resp + resp = 3 server messages.
	if got := r.link.B.MsgsSent; got != 3 {
		t.Fatalf("server sent %d messages, want 3", got)
	}
}

func TestRDMAFasterThanTCPShape(t *testing.T) {
	// A 128KB read over RDMA must beat the modeled TCP stack per-byte
	// cost: comm time well under the ~330us a TCP stream would need.
	r := newRig(t, false, noRegParams())
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{NQN: testNQN, QueueDepth: 4, Params: noRegParams(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		res := c.Submit(p, &transport.IO{Offset: 0, Size: 128 << 10}).Wait(p)
		if res.Err() != nil {
			t.Fatal(res.Err())
		}
		if res.CommTime <= 0 || res.CommTime > 100e3 {
			t.Fatalf("rdma comm time %v out of expected range", res.CommTime)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryRegistrationMissesAreRareAndLarge(t *testing.T) {
	// Registration misses are rare events with multi-millisecond cost:
	// they inflate the tail without moving the mean much, and only the
	// affected command waits (the queue keeps flowing).
	params := model.RDMA56G()
	params.MemRegFloorProb = 0.01 // raise the floor so the test sees events
	r := newRig(t, false, params)
	var worst time.Duration
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{NQN: testNQN, QueueDepth: 8, Params: params, Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			res := c.Submit(p, &transport.IO{Offset: 0, Size: 4096}).Wait(p)
			if res.Latency > worst {
				worst = res.Latency
			}
		}
		if c.RegMisses == 0 {
			t.Error("expected registration misses with raised floor")
		}
		if c.RegMisses > 100 {
			t.Errorf("too many misses: %d", c.RegMisses)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if worst < params.MemRegCost {
		t.Fatalf("worst latency %v should include a registration stall (>= %v)", worst, params.MemRegCost)
	}
}

func TestIdentifyOverRDMA(t *testing.T) {
	r := newRig(t, false, noRegParams())
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{NQN: testNQN, QueueDepth: 4, Params: noRegParams(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		res := c.Submit(p, &transport.IO{Admin: 0x06, CDW10: 1, Data: buf, Size: 4096}).Wait(p)
		if res.Err() != nil {
			t.Fatalf("identify: %v", res.Err())
		}
		if len(res.Data) != 4096 {
			t.Fatalf("identify page %d bytes", len(res.Data))
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDepthPipelines(t *testing.T) {
	r := newRig(t, false, noRegParams())
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{NQN: testNQN, QueueDepth: 8, Params: noRegParams(), Host: model.DefaultHost()})
		if err != nil {
			t.Fatal(err)
		}
		var futs []*sim.Future[*transport.Result]
		for i := 0; i < 64; i++ {
			futs = append(futs, c.Submit(p, &transport.IO{Offset: int64(i) * 4096, Size: 4096}))
		}
		for _, f := range futs {
			if res := f.Wait(p); res.Err() != nil {
				t.Errorf("io: %v", res.Err())
			}
		}
		if c.Completed != 64 {
			t.Errorf("completed %d", c.Completed)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}
