package rdma

import (
	"bytes"
	"testing"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

func TestRegCacheLRUAndPinning(t *testing.T) {
	c := newRegCache(3 * regPageSize)
	pool := regKey{id: 1}
	c.Preregister(pool, 2*regPageSize)
	if hit, _ := c.Touch(pool, 0); !hit {
		t.Fatal("pre-registered region must hit")
	}
	a, b := regKey{id: 10}, regKey{id: 11}
	if hit, _ := c.Touch(a, 100); hit {
		t.Fatal("first touch of a must miss")
	}
	if hit, _ := c.Touch(a, 100); !hit {
		t.Fatal("second touch of a must hit")
	}
	// Inserting b exceeds capacity (2 pinned pages + a + b = 4 > 3):
	// the LRU unpinned region (a) evicts, never the pinned pool.
	if hit, evicted := c.Touch(b, 100); hit || evicted != 1 {
		t.Fatalf("touch b: hit=%v evicted=%d, want miss evicting 1", hit, evicted)
	}
	if hit, _ := c.Touch(pool, 0); !hit {
		t.Fatal("pinned pool must survive eviction pressure")
	}
	if hit, _ := c.Touch(a, 100); hit {
		t.Fatal("a was evicted and must miss again")
	}
	c.Invalidate(b)
	if hit, _ := c.Touch(b, 100); hit {
		t.Fatal("invalidated region must miss")
	}
	c.Invalidate(pool)
	if hit, _ := c.Touch(pool, 0); !hit {
		t.Fatal("Invalidate must not drop a pinned region")
	}
	if c.Hits == 0 || c.Misses == 0 || c.Evictions == 0 || c.PreregBytes != 2*regPageSize {
		t.Fatalf("counters: %+v", *c)
	}
}

func TestRegCacheSteadyStateNeverRegistersInline(t *testing.T) {
	// With the fast path on, full RDMA56G registration parameters, and
	// pool-backed (virtual payload) I/O, every post hits the connect-time
	// pre-registered pool: zero misses where the legacy model would
	// sprinkle multi-millisecond stalls.
	params := model.RDMA56G()
	params.MemRegFloorProb = 0.01 // would force ~20 legacy misses in 2000 ops
	r := newRig(t, false, params)
	tel := telemetry.New()
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 8, Params: params, Host: model.DefaultHost(),
			Telemetry: tel, RegCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if res := c.Submit(p, &transport.IO{Offset: 0, Size: 4096}).Wait(p); res.Err() != nil {
				t.Fatal(res.Err())
			}
		}
		if c.RegMisses != 0 {
			t.Errorf("steady-state pool I/O missed %d times", c.RegMisses)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if snap.Counters["rdma.reg_hits"] < 2000 {
		t.Errorf("reg_hits = %d, want >= 2000", snap.Counters["rdma.reg_hits"])
	}
	if snap.Counters["rdma.reg_misses"] != 0 {
		t.Errorf("reg_misses = %d, want 0", snap.Counters["rdma.reg_misses"])
	}
	if want := int64(8 * poolBufBytes); snap.Counters["rdma.prereg_bytes"] != want {
		t.Errorf("prereg_bytes = %d, want %d", snap.Counters["rdma.prereg_bytes"], want)
	}
}

func TestRegCacheCallerBufferMissThenHit(t *testing.T) {
	// An unregistered caller buffer pays one registration on first use
	// (the mechanistic reason for a miss), then hits on every reuse.
	params := model.RDMA56G()
	r := newRig(t, true, params)
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 4, Params: params, Host: model.DefaultHost(),
			RegCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		first := c.Submit(p, &transport.IO{Offset: 0, Size: 4096, Data: buf}).Wait(p)
		if first.Err() != nil {
			t.Fatal(first.Err())
		}
		if c.RegMisses != 1 {
			t.Fatalf("first caller-buffer post: %d misses, want 1", c.RegMisses)
		}
		if min := time.Duration(float64(params.MemRegCost) * 0.7); first.Latency < min {
			t.Fatalf("first post latency %v should include registration (>= %v)", first.Latency, min)
		}
		second := c.Submit(p, &transport.IO{Offset: 0, Size: 4096, Data: buf}).Wait(p)
		if second.Err() != nil {
			t.Fatal(second.Err())
		}
		if c.RegMisses != 1 {
			t.Fatalf("buffer reuse missed again: %d misses", c.RegMisses)
		}
		if second.Latency >= params.MemRegCost {
			t.Fatalf("reuse latency %v should not include registration", second.Latency)
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRegCacheEvictionChurn(t *testing.T) {
	// A cache smaller than the working set of caller buffers churns:
	// distinct regions evict each other and re-register on return.
	params := model.RDMA56G()
	params.MemRegCost = 50 * time.Microsecond // keep the test fast
	r := newRig(t, true, params)
	tel := telemetry.New()
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 4, Params: params, Host: model.DefaultHost(),
			Telemetry: tel, RegCache: true,
			// Pool (4 x 128 KiB pinned) + one 4 KiB region fits; two do not.
			RegCacheBytes: 4*poolBufBytes + 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		bufs := [2][]byte{make([]byte, 4096), make([]byte, 4096)}
		for i := 0; i < 6; i++ {
			if res := c.Submit(p, &transport.IO{Offset: 0, Size: 4096, Data: bufs[i%2]}).Wait(p); res.Err() != nil {
				t.Fatal(res.Err())
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if snap.Counters["rdma.reg_misses"] != 6 {
		t.Errorf("reg_misses = %d, want 6 (every alternation re-registers)", snap.Counters["rdma.reg_misses"])
	}
	if snap.Counters["rdma.reg_evictions"] < 5 {
		t.Errorf("reg_evictions = %d, want >= 5", snap.Counters["rdma.reg_evictions"])
	}
}

func TestMergeAdjacentReadsByteExact(t *testing.T) {
	// Eight physically contiguous 4K reads in one doorbell train fold
	// into one work request; the single completion payload splits back
	// byte-exact into each member's buffer.
	r := newRig(t, true, noRegParams())
	tel := telemetry.New()
	const n, bs = 8, 4096
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 16, Params: noRegParams(), Host: model.DefaultHost(),
			BatchSize: n, Telemetry: tel, Merge: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, n*bs)
		for i := range want {
			want[i] = byte(i * 7 % 253)
		}
		if res := c.Submit(p, &transport.IO{Write: true, Offset: 0, Size: len(want), Data: want}).Wait(p); res.Err() != nil {
			t.Fatal(res.Err())
		}
		ios := make([]*transport.IO, n)
		for i := range ios {
			ios[i] = &transport.IO{Offset: int64(i) * bs, Size: bs, Data: make([]byte, bs)}
		}
		for i, fut := range c.SubmitBatch(p, ios) {
			if res := fut.Wait(p); res.Err() != nil {
				t.Fatalf("read %d: %v", i, res.Err())
			}
			if !bytes.Equal(ios[i].Data, want[i*bs:(i+1)*bs]) {
				t.Fatalf("read %d: payload mismatch after merge split", i)
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Snapshot().Counters["rdma.merged_ops"]; got != n-1 {
		t.Errorf("merged_ops = %d, want %d (one train folded to one WR)", got, n-1)
	}
}

func TestMergeVirtualWritesAndGaps(t *testing.T) {
	// Virtual-payload writes merge per contiguous run: {0,1,2} and {5,6}
	// fold (two groups, three entries saved); the lone block at 9 posts
	// unmerged. Every member still completes individually.
	r := newRig(t, false, noRegParams())
	tel := telemetry.New()
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 16, Params: noRegParams(), Host: model.DefaultHost(),
			BatchSize: 8, Telemetry: tel, Merge: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		blocks := []int64{0, 1, 2, 5, 6, 9}
		ios := make([]*transport.IO, len(blocks))
		for i, blk := range blocks {
			ios[i] = &transport.IO{Write: true, Offset: blk * 4096, Size: 4096}
		}
		for i, fut := range c.SubmitBatch(p, ios) {
			if res := fut.Wait(p); res.Err() != nil {
				t.Fatalf("write %d: %v", i, res.Err())
			}
		}
		if c.Completed != int64(len(blocks)) {
			t.Errorf("completed %d, want %d", c.Completed, len(blocks))
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Snapshot().Counters["rdma.merged_ops"]; got != 3 {
		t.Errorf("merged_ops = %d, want 3 ({0,1,2} folds 2, {5,6} folds 1)", got)
	}
}

func TestDynDoorbellController(t *testing.T) {
	w := &rdmaWire{cfg: &ClientConfig{DynDoorbell: true}, dynTrain: 1}
	// Backlog doubles the train up to the occupancy (and the cap).
	if got := w.TrainSize(16); got != 16 {
		t.Fatalf("TrainSize(16) = %d, want 16", got)
	}
	// A deeper backlog keeps growing toward MaxTrain's default of 64.
	if got := w.TrainSize(200); got != 64 {
		t.Fatalf("TrainSize(200) = %d, want 64 (cap)", got)
	}
	// Drain shrinks multiplicatively and clamps to the queue.
	if got := w.TrainSize(3); got != 3 {
		t.Fatalf("TrainSize(3) = %d, want 3", got)
	}
	if got := w.TrainSize(0); got != 1 {
		t.Fatalf("TrainSize(0) = %d, want 1", got)
	}
	// Off means defer to the configured BatchSize.
	w.cfg.DynDoorbell = false
	if got := w.TrainSize(32); got != 0 {
		t.Fatalf("TrainSize with DynDoorbell off = %d, want 0", got)
	}
}

func TestDynDoorbellEndToEnd(t *testing.T) {
	// A bursty batch over the dynamic controller completes everything and
	// records multi-entry trains in batch.submit_size without a fixed
	// BatchSize configured.
	r := newRig(t, false, noRegParams())
	tel := telemetry.New()
	r.e.Go("app", func(p *sim.Proc) {
		c, err := Connect(p, r.link.A, ClientConfig{
			NQN: testNQN, QueueDepth: 64, Params: noRegParams(), Host: model.DefaultHost(),
			Telemetry: tel, DynDoorbell: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ios := make([]*transport.IO, 64)
		for i := range ios {
			ios[i] = &transport.IO{Offset: int64(i) * 4096, Size: 4096}
		}
		for i, fut := range c.SubmitBatch(p, ios) {
			if res := fut.Wait(p); res.Err() != nil {
				t.Fatalf("io %d: %v", i, res.Err())
			}
		}
		c.Close()
		c.WaitClosed(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	bsz, ok := snap.Histograms["batch.submit_size"]
	if !ok || bsz.Max < 2 {
		t.Fatalf("dynamic doorbell never coalesced: %+v", bsz)
	}
	if saved := snap.Counters["rdma.doorbells_saved"]; saved <= 0 {
		t.Errorf("doorbells_saved = %d, want > 0", saved)
	}
}
