package rdma

// regPageSize is the pinning granularity: regions register in whole
// pages (page pinning + HCA translation-table entries are per-page).
const regPageSize = 4096

// regKey identifies one registered buffer region: the base pointer of a
// real caller/ring buffer, or a synthetic id for modeled regions (the
// connect-time buffer pool, legacy cold regions).
type regKey struct {
	ptr *byte
	id  uint64
}

// regEntry is one registered region on the LRU list (head = MRU).
type regEntry struct {
	key        regKey
	bytes      int64
	pinned     bool
	prev, next *regEntry
}

// regCache is the mechanistic MR (memory-registration) cache: an LRU of
// registered buffer regions bounded by a byte capacity. Pre-registered
// regions (buffer pool, ring arena) are pinned and never evict; other
// regions evict LRU-first under pressure, so misses happen for a reason
// — a region never seen, or one evicted by churn — instead of a
// decaying coin flip. The engine is cooperative, so no locking.
type regCache struct {
	capacity   int64
	used       int64
	entries    map[regKey]*regEntry
	head, tail *regEntry

	// Hits, Misses, Evictions, PreregBytes mirror the rdma.* telemetry
	// counters for direct inspection in tests.
	Hits, Misses, Evictions int64
	PreregBytes             int64
}

func newRegCache(capacity int64) *regCache {
	return &regCache{capacity: capacity, entries: map[regKey]*regEntry{}}
}

// alignRegion rounds a region size up to whole pages.
func alignRegion(bytes int64) int64 {
	if bytes <= 0 {
		return regPageSize
	}
	return (bytes + regPageSize - 1) &^ (regPageSize - 1)
}

// Preregister pins a region in the cache (connect-time pool and ring
// arena registration). Pinned regions count against capacity but are
// never evicted; registration cost is charged by the caller as part of
// connection setup, not the I/O path.
func (c *regCache) Preregister(key regKey, bytes int64) {
	if e, ok := c.entries[key]; ok {
		e.pinned = true
		c.moveToFront(e)
		return
	}
	e := &regEntry{key: key, bytes: alignRegion(bytes), pinned: true}
	c.insert(e)
	c.PreregBytes += e.bytes
}

// Touch looks a region up on the post path. A hit refreshes LRU order
// and costs nothing; a miss registers the region (the caller charges
// MemRegCost) and may evict unpinned LRU regions to fit. Returns whether
// it hit and how many regions were evicted by the insertion.
func (c *regCache) Touch(key regKey, bytes int64) (hit bool, evicted int) {
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		c.Hits++
		return true, 0
	}
	c.Misses++
	e := &regEntry{key: key, bytes: alignRegion(bytes)}
	c.insert(e)
	for c.used > c.capacity {
		victim := c.evictLRU(e)
		if victim == nil {
			break // everything left is pinned or in use: over-commit
		}
		evicted++
	}
	c.Evictions += int64(evicted)
	return false, evicted
}

// Invalidate drops an unpinned region (pool churn / fragmentation force
// a re-registration on next touch). Pinned regions are untouchable.
func (c *regCache) Invalidate(key regKey) {
	e, ok := c.entries[key]
	if !ok || e.pinned {
		return
	}
	c.remove(e)
}

// Used returns the registered bytes currently held.
func (c *regCache) Used() int64 { return c.used }

// Len returns the number of registered regions.
func (c *regCache) Len() int { return len(c.entries) }

func (c *regCache) insert(e *regEntry) {
	c.entries[e.key] = e
	c.used += e.bytes
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *regCache) remove(e *regEntry) {
	delete(c.entries, e.key)
	c.used -= e.bytes
	c.unlink(e)
}

func (c *regCache) unlink(e *regEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictLRU removes the least-recently-used unpinned region other than
// keep; nil when none is evictable.
func (c *regCache) evictLRU(keep *regEntry) *regEntry {
	for e := c.tail; e != nil; e = e.prev {
		if e.pinned || e == keep {
			continue
		}
		c.remove(e)
		return e
	}
	return nil
}

func (c *regCache) moveToFront(e *regEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
