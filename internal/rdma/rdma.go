// Package rdma implements the NVMe/RDMA baseline transport: kernel-bypass
// queue pairs with direct data placement (no R2T round trip, no
// application-level chunking, near-zero per-byte host cost) and a memory-
// registration cache whose misses inject the large latencies behind
// RDMA's short-run tail behaviour (§5.4, Fig 13 of the paper).
//
// The paper evaluates NVMe/RDMA over 56 Gb IB FDR (SR-IOV) and NVMe/RoCE
// over 100 GbE on bare metal; both are instances of this transport with
// different model.RDMAParams. The session machinery (CID table, reactor,
// deadlines, batching, keep-alive, KATO) lives in internal/session; this
// file is the thin RDMA wire binding, which therefore inherits doorbell
// batching, telemetry, per-command deadlines, and keep-alive from the
// engine.
package rdma

import (
	"math"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// LinkParams converts RDMA fabric parameters into link-model terms: the
// HCA moves payload bytes without host CPU, and completion-queue polling
// avoids interrupt wakeups.
func LinkParams(r model.RDMAParams) model.LinkParams {
	return model.LinkParams{
		Name:            r.Name,
		WireBytesPerSec: r.WireBytesPerSec,
		Propagation:     r.Propagation,
		PerMsgCPU:       r.PerOpCPU,
		PerByteCPUNanos: 0,
		WakeupPenalty:   0,
	}
}

// ClientConfig configures one NVMe/RDMA host queue pair.
type ClientConfig struct {
	NQN        string
	QueueDepth int
	Params     model.RDMAParams
	Host       model.HostParams
	// BatchSize > 1 coalesces queued submissions into one doorbell train
	// per message (0/1 = classic one-capsule-per-message wire).
	BatchSize int
	// CommandTimeout, MaxRetries, RetryBackoff, KeepAlive: engine
	// recovery knobs, all off by default (see tcp.ClientConfig for
	// semantics).
	CommandTimeout time.Duration
	MaxRetries     int
	RetryBackoff   time.Duration
	KeepAlive      time.Duration
	// HostNQN identifies this host in the Fabrics Connect command
	// (defaults to a generated NQN).
	HostNQN string
	// Telemetry receives counters and latency histograms (nil disables).
	Telemetry *telemetry.Sink
}

// Client is the host side of one RDMA queue pair.
type Client struct {
	*session.Host
	wire *rdmaWire

	// RegMisses counts memory-registration cache misses.
	RegMisses int64
}

// rdmaWire is the direct-placement data path: writes carry their whole
// payload with the capsule (no R2T), reads come back as one RDMA write,
// and posting a work request may stall on a memory-registration miss.
type rdmaWire struct {
	cl  *Client
	h   *session.Host
	ep  *netsim.Endpoint
	cfg *ClientConfig
	rng interface{ Float64() float64 }
}

// Connect starts a client on ep (connection setup over the RDMA CM is
// modeled by the ICReq/ICResp exchange).
func Connect(p *sim.Proc, ep *netsim.Endpoint, cfg ClientConfig) (*Client, error) {
	e := p.Engine()
	w := &rdmaWire{ep: ep, cfg: &cfg, rng: e.Rand("rdma/" + cfg.Params.Name)}
	h := session.NewHost(e, ep, session.HostConfig{
		Label:          "rdma",
		NQN:            cfg.NQN,
		HostNQN:        cfg.HostNQN,
		QueueDepth:     cfg.QueueDepth,
		Host:           cfg.Host,
		BatchSize:      cfg.BatchSize,
		CommandTimeout: cfg.CommandTimeout,
		MaxRetries:     cfg.MaxRetries,
		RetryBackoff:   cfg.RetryBackoff,
		KeepAlive:      cfg.KeepAlive,
		// Completion-queue polling: parking never pays the interrupt
		// wakeup penalty (LinkParams zeroes it anyway).
		InterruptWakeups: false,
		Telemetry:        cfg.Telemetry,
	}, w)
	w.h = h
	c := &Client{Host: h, wire: w}
	w.cl = c
	if err := h.Handshake(p); err != nil {
		return nil, err
	}
	h.Telemetry().Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "rdma", cfg.Params.Name)
	h.Start()
	return c, nil
}

func (w *rdmaWire) BuildICReq(reconnect bool) *pdu.ICReq { return &pdu.ICReq{PFV: 0} }

func (w *rdmaWire) AdoptICResp(resp *pdu.ICResp) {}

func (w *rdmaWire) Admit(io *transport.IO) nvme.Status { return nvme.StatusSuccess }

// StageSubmit charges payload generation for writes on the submitting
// process.
func (w *rdmaWire) StageSubmit(p *sim.Proc, pend *session.Pending) {
	io := pend.IO
	if io.Write && !io.NoFill {
		p.Sleep(time.Duration(float64(io.Size) * w.cfg.Host.FillPerByteNanos))
	}
}

// MakeIOEntry builds the work request: writes carry their full payload
// with the capsule — the target's HCA places the data directly into the
// reserved buffer (no R2T exchange).
func (w *rdmaWire) MakeIOEntry(pend *session.Pending) pdu.BatchEntry {
	io := pend.IO
	w.h.Telemetry().Observe(telemetry.HistIOSize, int64(io.Size))
	slba := uint64(io.Offset / transport.BlockSize)
	nlb := uint32(io.Size / transport.BlockSize)
	if !io.Write {
		return pdu.BatchEntry{Cmd: nvme.NewRead(pend.CID, io.Nsid(), slba, nlb)}
	}
	e := pdu.BatchEntry{Cmd: nvme.NewWrite(pend.CID, io.Nsid(), slba, nlb)}
	if io.Data != nil {
		e.Data = io.Data
	} else {
		e.VirtualLen = io.Size
	}
	pend.Sent = io.Size
	return e
}

// Transmit posts one work request. I/O commands may stall on a memory-
// registration miss; admin and flush commands ride the send queue
// directly (their buffers were registered at connect time).
func (w *rdmaWire) Transmit(p *sim.Proc, e *pdu.BatchEntry) {
	capsule := &pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
	if e.Cmd.Flags&transport.AdminFlag != 0 || e.Cmd.Opcode == nvme.OpFlush {
		transport.SendPDUs(p, w.ep, capsule)
		return
	}
	if delay := w.registrationDelay(); delay > 0 {
		// Registration runs on a kernel helper: only this command waits;
		// the reactor keeps serving the queue.
		ep := w.ep
		w.h.Engine().Go("rdma-memreg", func(q *sim.Proc) {
			q.Sleep(delay)
			transport.SendPDUs(q, ep, capsule)
		})
		return
	}
	transport.SendPDUs(p, w.ep, capsule)
}

// TransmitTrain posts a doorbell-coalesced train as one message. The
// registration cache is consulted once for the train (the work requests
// share the posting): a miss delays the whole train.
func (w *rdmaWire) TransmitTrain(p *sim.Proc, b *pdu.CmdBatch) {
	if delay := w.registrationDelay(); delay > 0 {
		// The engine reuses its batch scratch: copy the entries before
		// handing them to the delayed helper.
		cp := &pdu.CmdBatch{Entries: append([]pdu.BatchEntry(nil), b.Entries...)}
		ep := w.ep
		w.h.Engine().Go("rdma-memreg", func(q *sim.Proc) {
			q.Sleep(delay)
			transport.SendPDUs(q, ep, cp)
		})
		return
	}
	transport.SendPDUs(p, w.ep, b)
}

// PollBudget is 0: the engine's kick/park loop already models CQ polling
// without wakeup charges (InterruptWakeups off).
func (w *rdmaWire) PollBudget() time.Duration { return 0 }

func (w *rdmaWire) PreReactor(p *sim.Proc) {}

func (w *rdmaWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	return false
}

func (w *rdmaWire) ReleaseAttempt(pend *session.Pending) {}

// registrationDelay models the HCA memory-registration cache. The I/O
// buffer pool registers at connect time; during a run the registration
// cache occasionally misses (buffer-pool growth, eviction, fragmentation)
// and the affected command must wait for a multi-millisecond region
// registration (page pinning + HCA table update). The miss probability
// decays with completed work, so a short run carries a heavy registration
// tail that a 3-4x longer run dilutes below the p99.9/p99.99 thresholds —
// the paper's §5.4 observation. The expected number of events converges
// to evictMissScale x MemRegWarmOps.
func (w *rdmaWire) registrationDelay() time.Duration {
	prm := w.cfg.Params
	prob := evictMissScale*math.Exp(-float64(w.h.Completed)/prm.MemRegWarmOps) + prm.MemRegFloorProb
	if w.rng.Float64() >= prob {
		return 0
	}
	w.cl.RegMisses++
	return time.Duration(float64(prm.MemRegCost) * (0.7 + 0.6*w.rng.Float64()))
}

// evictMissScale is the initial per-op registration-miss probability.
const evictMissScale = 0.007

// ServerConfig configures the target side.
type ServerConfig struct {
	NQN    string
	Params model.RDMAParams
	Host   model.HostParams
	// BatchSize > 1 enables completion-reap coalescing on transmit.
	BatchSize int
	// KATO is the keep-alive timeout: a connection silent for longer is
	// torn down (0 disables the watchdog).
	KATO time.Duration
	// Telemetry receives connection and keep-alive counters (nil
	// disables).
	Telemetry *telemetry.Sink
}

// Server is the target-side RDMA transport: direct data placement into
// pre-registered buffers, so no buffer pool and no R2T machinery — the
// session engine drives connection lifecycle, dispatch, and teardown.
type Server struct {
	*session.Target
	cfg ServerConfig
}

// NewServer creates the RDMA transport for tgt.
func NewServer(e *sim.Engine, tgt *target.Target, cfg ServerConfig) *Server {
	s := &Server{cfg: cfg}
	s.Target = session.NewTarget(e, tgt, session.TargetConfig{
		Label:     "rdma",
		NQN:       cfg.NQN,
		BatchSize: cfg.BatchSize,
		KATO:      cfg.KATO,
		// Direct placement: no chunk pool, no busy-poll budget, and CQ
		// polling never charges interrupt wakeups.
		InterruptWakeups: false,
		Telemetry:        cfg.Telemetry,
	}, (*rdmaTargetWire)(s))
	return s
}

// rdmaTargetWire binds the engine's connections to direct data placement.
type rdmaTargetWire Server

func (s *rdmaTargetWire) NewConn(c *session.Conn) session.ConnWire {
	return &rdmaConnWire{s: (*Server)(s), c: c}
}

// rdmaConnWire is the per-connection RDMA wire: a bare CM-exchange
// handshake, reads returned as one RDMA write, writes executed straight
// from the capsule payload.
type rdmaConnWire struct {
	s *Server
	c *session.Conn
}

func (w *rdmaConnWire) OnICReq(req *pdu.ICReq) {
	w.c.Target().Telemetry().Inc(telemetry.CtrSrvTCPConns)
	w.c.Post(nil, &pdu.ICResp{PFV: req.PFV})
}

func (w *rdmaConnWire) TrType() uint8 { return nvme.TrTypeRDMA }

func (w *rdmaConnWire) PreLoop() {}

func (w *rdmaConnWire) DispatchRead(cmd nvme.Command, transit time.Duration) {
	c := w.c
	size := int(cmd.NLB()) * transport.BlockSize
	c.Target().Engine().Go("rdma-read-worker", func(p *sim.Proc) {
		res := c.Target().Subsys().Execute(p, w.s.cfg.NQN, cmd, nil)
		if res.CQE.Status.IsError() {
			c.Post(nil, c.Resp(res, transit, 0))
			return
		}
		// One RDMA write moves the whole payload; the completion
		// capsule rides behind it.
		d := &pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Last: true}
		if res.Data != nil {
			d.Payload = res.Data
		} else {
			d.VirtualLen = size
		}
		c.Post(nil, d, c.Resp(res, transit, 0))
	})
}

func (w *rdmaConnWire) DispatchWrite(cap *pdu.CapsuleCmd, size int, transit time.Duration) {
	// The HCA already placed the payload: execute straight from the
	// capsule, no pool buffers, no R2T.
	w.c.ExecWrite(cap.Cmd, size, cap.Data, transit, nil, 0)
}

func (w *rdmaConnWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	return false
}

func (w *rdmaConnWire) Teardown() {}
