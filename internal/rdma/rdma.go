// Package rdma implements the NVMe/RDMA baseline transport: kernel-bypass
// queue pairs with direct data placement (no R2T round trip, no
// application-level chunking, near-zero per-byte host cost) and a memory-
// registration cache whose misses inject the large latencies behind
// RDMA's short-run tail behaviour (§5.4, Fig 13 of the paper).
//
// The paper evaluates NVMe/RDMA over 56 Gb IB FDR (SR-IOV) and NVMe/RoCE
// over 100 GbE on bare metal; both are instances of this transport with
// different model.RDMAParams. The session machinery (CID table, reactor,
// deadlines, batching, keep-alive, KATO) lives in internal/session; this
// file is the thin RDMA wire binding, which therefore inherits doorbell
// batching, telemetry, per-command deadlines, and keep-alive from the
// engine.
package rdma

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/qos"
	"nvmeoaf/internal/session"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/telemetry"
	"nvmeoaf/internal/transport"
)

// LinkParams converts RDMA fabric parameters into link-model terms: the
// HCA moves payload bytes without host CPU, and completion-queue polling
// avoids interrupt wakeups.
func LinkParams(r model.RDMAParams) model.LinkParams {
	return model.LinkParams{
		Name:            r.Name,
		WireBytesPerSec: r.WireBytesPerSec,
		Propagation:     r.Propagation,
		PerMsgCPU:       r.PerOpCPU,
		PerByteCPUNanos: 0,
		WakeupPenalty:   0,
	}
}

// ClientConfig configures one NVMe/RDMA host queue pair.
type ClientConfig struct {
	NQN        string
	QueueDepth int
	Params     model.RDMAParams
	Host       model.HostParams
	// BatchSize > 1 coalesces queued submissions into one doorbell train
	// per message (0/1 = classic one-capsule-per-message wire).
	BatchSize int
	// CommandTimeout, MaxRetries, RetryBackoff, KeepAlive: engine
	// recovery knobs, all off by default (see tcp.ClientConfig for
	// semantics).
	CommandTimeout time.Duration
	MaxRetries     int
	RetryBackoff   time.Duration
	KeepAlive      time.Duration
	// HostNQN identifies this host in the Fabrics Connect command
	// (defaults to a generated NQN).
	HostNQN string
	// Telemetry receives counters and latency histograms (nil disables).
	Telemetry *telemetry.Sink

	// Tenant names the tenant this queue submits for (carried in the
	// Fabrics Connect hostNQN); QoS is the host-side per-tenant
	// admission shaper (nil = off).
	Tenant string
	QoS    *qos.Shaper

	// RegCache enables the mechanistic fast path: the I/O buffer pool is
	// pre-registered with the HCA at connect time and every post goes
	// through the LRU MR cache (regcache.go) instead of the legacy
	// stochastic registration model. Steady-state pool and ring-arena
	// I/O never registers inline; misses happen only for unregistered
	// caller buffers and eviction churn.
	RegCache bool
	// RegCacheBytes caps the MR cache (0 = Params.RegCacheBytes, then
	// 256 MiB).
	RegCacheBytes int64
	// Merge folds physically contiguous same-direction commands in a
	// doorbell train into one work request (RDMAbox adjacent-request
	// merging); completions are split back to member CIDs invisibly to
	// the session engine.
	Merge bool
	// DynDoorbell replaces the fixed BatchSize with an occupancy-driven
	// doorbell-train controller: the train grows while the submit queue
	// has backlog and shrinks toward 1 when it drains.
	DynDoorbell bool
	// MaxTrain caps the dynamic doorbell train (0 = 64).
	MaxTrain int
}

// Client is the host side of one RDMA queue pair.
type Client struct {
	*session.Host
	wire *rdmaWire

	// RegMisses counts memory-registration cache misses.
	//
	// Deprecated: read the rdma.reg_misses telemetry counter instead;
	// the field is kept in sync as an alias.
	RegMisses int64
}

// AllocBuffer implements the ring arena hook (internal/ring asserts for
// it on the wrapped queue): buffers handed to a Ring register with the
// HCA at ring creation, so steady-state ring I/O is a guaranteed
// registration-cache hit.
func (c *Client) AllocBuffer(size int) []byte {
	buf := make([]byte, size)
	if w := c.wire; w.cache != nil {
		w.cache.Preregister(regKey{ptr: &buf[0]}, int64(size))
		c.Telemetry().Add(telemetry.CtrRDMAPreregBytes, alignRegion(int64(size)))
	}
	return buf
}

// mergeMember records one command folded into a merged work request.
// Liveness across CID recycling is fenced by pointer identity plus the
// pending generation (the same discipline armDeadline uses).
type mergeMember struct {
	pend *session.Pending
	cid  uint16
	gen  int
	size int
}

// mergeGroup is one merged work request awaiting its completion, keyed
// by the leader (lowest-offset member) CID.
type mergeGroup struct {
	members []mergeMember
	total   int
}

// rdmaWire is the direct-placement data path: writes carry their whole
// payload with the capsule (no R2T), reads come back as one RDMA write,
// and posting a work request may stall on a memory-registration miss.
type rdmaWire struct {
	cl  *Client
	h   *session.Host
	ep  *netsim.Endpoint
	cfg *ClientConfig
	rng *rand.Rand

	// Legacy stochastic-model shim: coldSeen models the
	// round(evictMissScale x MemRegWarmOps) distinct pool regions that
	// have not yet been registered this run (see postDelay).
	coldSeen []bool

	// Fast path (RegCache): the mechanistic MR cache; nil when the
	// legacy model is active.
	cache *regCache

	// Merge state: in-flight merged work requests by leader CID, plus
	// reactor-owned scratch for rebuilding the train and fanning the
	// merged completion back out.
	groups      map[uint16]*mergeGroup
	mergeIdx    []int
	mergeDead   []bool
	respScratch pdu.CapsuleResp

	// Dynamic doorbell controller state.
	dynTrain int
}

// poolRegion keys the connect-time pre-registered I/O buffer pool in
// the MR cache; poolBufBytes is the modeled per-queue-entry pool buffer
// (large enough for a max-size I/O).
var poolRegion = regKey{id: 1}

const poolBufBytes = 128 << 10

// Connect starts a client on ep (connection setup over the RDMA CM is
// modeled by the ICReq/ICResp exchange).
func Connect(p *sim.Proc, ep *netsim.Endpoint, cfg ClientConfig) (*Client, error) {
	e := p.Engine()
	w := &rdmaWire{ep: ep, cfg: &cfg, rng: e.Rand("rdma/" + cfg.Params.Name), dynTrain: 1}
	if cfg.RegCache {
		w.cache = newRegCache(regCacheCapacity(&cfg))
	} else if k := int(math.Round(evictMissScale * cfg.Params.MemRegWarmOps)); k > 0 {
		w.coldSeen = make([]bool, k)
	}
	if cfg.Merge {
		w.groups = map[uint16]*mergeGroup{}
	}
	h := session.NewHost(e, ep, session.HostConfig{
		Label:          "rdma",
		NQN:            cfg.NQN,
		HostNQN:        cfg.HostNQN,
		QueueDepth:     cfg.QueueDepth,
		Host:           cfg.Host,
		BatchSize:      cfg.BatchSize,
		CommandTimeout: cfg.CommandTimeout,
		MaxRetries:     cfg.MaxRetries,
		RetryBackoff:   cfg.RetryBackoff,
		KeepAlive:      cfg.KeepAlive,
		// Completion-queue polling: parking never pays the interrupt
		// wakeup penalty (LinkParams zeroes it anyway).
		InterruptWakeups: false,
		Telemetry:        cfg.Telemetry,
		Tenant:           cfg.Tenant,
		QoS:              cfg.QoS,
	}, w)
	w.h = h
	c := &Client{Host: h, wire: w}
	w.cl = c
	if err := h.Handshake(p); err != nil {
		return nil, err
	}
	if w.cache != nil {
		// Pre-register the whole I/O buffer pool during connection setup:
		// steady-state pool I/O never registers inline (RDMAbox).
		depth := cfg.QueueDepth
		if depth <= 0 {
			depth = 128
		}
		poolBytes := int64(depth) * poolBufBytes
		w.cache.Preregister(poolRegion, poolBytes)
		h.Telemetry().Add(telemetry.CtrRDMAPreregBytes, poolBytes)
	}
	h.Telemetry().Trace(int64(p.Now()), telemetry.EvPathSelected, 0, "rdma", cfg.Params.Name)
	h.Start()
	return c, nil
}

// regCacheCapacity resolves the MR-cache byte cap: explicit client knob,
// then the fabric parameter, then 256 MiB.
func regCacheCapacity(cfg *ClientConfig) int64 {
	if cfg.RegCacheBytes > 0 {
		return cfg.RegCacheBytes
	}
	if cfg.Params.RegCacheBytes > 0 {
		return cfg.Params.RegCacheBytes
	}
	return 256 << 20
}

func (w *rdmaWire) BuildICReq(reconnect bool) *pdu.ICReq { return &pdu.ICReq{PFV: 0} }

func (w *rdmaWire) AdoptICResp(resp *pdu.ICResp) {}

func (w *rdmaWire) Admit(io *transport.IO) nvme.Status { return nvme.StatusSuccess }

// StageSubmit charges payload generation for writes on the submitting
// process.
func (w *rdmaWire) StageSubmit(p *sim.Proc, pend *session.Pending) {
	io := pend.IO
	if io.Write && !io.NoFill {
		p.Sleep(time.Duration(float64(io.Size) * w.cfg.Host.FillPerByteNanos))
	}
}

// MakeIOEntry builds the work request: writes carry their full payload
// with the capsule — the target's HCA places the data directly into the
// reserved buffer (no R2T exchange).
func (w *rdmaWire) MakeIOEntry(pend *session.Pending) pdu.BatchEntry {
	io := pend.IO
	w.h.Telemetry().Observe(telemetry.HistIOSize, int64(io.Size))
	slba := uint64(io.Offset / transport.BlockSize)
	nlb := uint32(io.Size / transport.BlockSize)
	if !io.Write {
		return pdu.BatchEntry{Cmd: nvme.NewRead(pend.CID, io.Nsid(), slba, nlb)}
	}
	e := pdu.BatchEntry{Cmd: nvme.NewWrite(pend.CID, io.Nsid(), slba, nlb)}
	if io.Data != nil {
		e.Data = io.Data
	} else {
		e.VirtualLen = io.Size
	}
	pend.Sent = io.Size
	return e
}

// Transmit posts one work request. I/O commands may stall on a memory-
// registration miss; admin and flush commands ride the send queue
// directly (their buffers were registered at connect time).
func (w *rdmaWire) Transmit(p *sim.Proc, e *pdu.BatchEntry) {
	capsule := &pdu.CapsuleCmd{Cmd: e.Cmd, Data: e.Data, VirtualLen: e.VirtualLen}
	if e.Cmd.Flags&transport.AdminFlag != 0 || e.Cmd.Opcode == nvme.OpFlush {
		transport.SendPDUs(p, w.ep, capsule)
		return
	}
	if delay := w.postDelay(e); delay > 0 {
		// Registration runs on a kernel helper: only this command waits;
		// the reactor keeps serving the queue.
		ep := w.ep
		w.h.Engine().Go("rdma-memreg", func(q *sim.Proc) {
			q.Sleep(delay)
			transport.SendPDUs(q, ep, capsule)
		})
		return
	}
	transport.SendPDUs(p, w.ep, capsule)
}

// TransmitTrain posts a doorbell-coalesced train as one message: one
// doorbell for the whole train. With Merge on, physically contiguous
// same-direction entries fold into single work requests first. With the
// MR cache, each work request's buffer region is touched (a miss delays
// the train by its registration); the legacy model consults its miss
// distribution once per train.
func (w *rdmaWire) TransmitTrain(p *sim.Proc, b *pdu.CmdBatch) {
	w.h.Telemetry().Add(telemetry.CtrRDMADoorbellsSaved, int64(len(b.Entries)-1))
	if w.cfg.Merge {
		w.mergeTrain(b)
	}
	var delay time.Duration
	if w.cache != nil {
		for i := range b.Entries {
			delay += w.postDelay(&b.Entries[i])
		}
	} else {
		delay = w.postDelay(nil)
	}
	if delay > 0 {
		// The engine reuses its batch scratch: copy the entries before
		// handing them to the delayed helper.
		cp := &pdu.CmdBatch{Entries: append([]pdu.BatchEntry(nil), b.Entries...)}
		ep := w.ep
		w.h.Engine().Go("rdma-memreg", func(q *sim.Proc) {
			q.Sleep(delay)
			transport.SendPDUs(q, ep, cp)
		})
		return
	}
	transport.SendPDUs(p, w.ep, b)
}

// TrainSize implements session.TrainSizer: dynamic doorbell coalescing.
// The train doubles while the submit queue keeps at least twice the
// current train queued (amortizing per-doorbell cost under backlog) and
// halves when occupancy falls to half the train (protecting latency on
// drain). Deterministic under the sim clock; 0 defers to BatchSize.
func (w *rdmaWire) TrainSize(queued int) int {
	if !w.cfg.DynDoorbell {
		return 0
	}
	max := w.cfg.MaxTrain
	if max <= 0 {
		max = 64
	}
	for queued >= 2*w.dynTrain && w.dynTrain < max {
		w.dynTrain *= 2
	}
	for queued <= w.dynTrain/2 && w.dynTrain > 1 {
		w.dynTrain /= 2
	}
	d := w.dynTrain
	if queued > 0 && d > queued {
		d = queued
	}
	return d
}

// PollBudget is 0: the engine's kick/park loop already models CQ polling
// without wakeup charges (InterruptWakeups off).
func (w *rdmaWire) PollBudget() time.Duration { return 0 }

func (w *rdmaWire) PreReactor(p *sim.Proc) {}

func (w *rdmaWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	return false
}

func (w *rdmaWire) ReleaseAttempt(pend *session.Pending) {}

// postDelay models the HCA memory-registration check for one post.
//
// Fast path (cache non-nil): the work request's buffer region is looked
// up in the mechanistic MR cache — the pre-registered pool for pooled /
// virtual payloads, the buffer base address for caller buffers. A hit
// costs nothing; a miss charges one region registration (page pinning +
// HCA table update) and may evict LRU regions under capacity pressure.
//
// Legacy shim (cache nil): the stochastic model the fast path replaces,
// recast mechanistically so its statistics survive. The run starts with
// K = round(evictMissScale x MemRegWarmOps) cold pool regions; each post
// picks a region with probability evictMissScale and the first touch of
// each region is a miss, so the per-post miss rate decays as
// evictMissScale x exp(-evictMissScale x posts / K) — the same decay
// constant (~MemRegWarmOps) the old exponential coin flip had, and the
// same expected total (~K) misses. MemRegFloorProb models steady-state
// region churn (pool growth, fragmentation): a forced re-registration
// with that probability per post. Short runs carry a heavy registration
// tail that 3-4x longer runs dilute below p99.9/p99.99 — the paper's
// §5.4 observation (Fig 13) — and the figure suite pins that shape.
func (w *rdmaWire) postDelay(e *pdu.BatchEntry) time.Duration {
	if w.cache != nil {
		return w.touchEntry(e)
	}
	prm := w.cfg.Params
	if prm.MemRegFloorProb > 0 && w.rng.Float64() < prm.MemRegFloorProb {
		return w.missDelay() // churned region: forced re-registration
	}
	if k := len(w.coldSeen); k > 0 && w.rng.Float64() < evictMissScale {
		if i := w.rng.Intn(k); !w.coldSeen[i] {
			w.coldSeen[i] = true
			return w.missDelay()
		}
	}
	w.h.Telemetry().Inc(telemetry.CtrRDMARegHits)
	return 0
}

// touchEntry resolves the buffer region behind one work request and
// touches it in the MR cache: virtual / pooled payloads hit the pinned
// pool region; real caller buffers key by base address (ring-arena
// buffers were pre-registered by AllocBuffer and always hit).
func (w *rdmaWire) touchEntry(e *pdu.BatchEntry) time.Duration {
	if e.Cmd.Flags&transport.AdminFlag != 0 || e.Cmd.Opcode == nvme.OpFlush {
		return 0
	}
	key := poolRegion
	var bytes int64
	if pend, ok := w.h.LookupPending(e.Cmd.CID); ok && pend.IO.Data != nil {
		key = regKey{ptr: &pend.IO.Data[0]}
		bytes = int64(len(pend.IO.Data))
	}
	tel := w.h.Telemetry()
	hit, evicted := w.cache.Touch(key, bytes)
	if hit {
		tel.Inc(telemetry.CtrRDMARegHits)
		return 0
	}
	tel.Add(telemetry.CtrRDMARegEvictions, int64(evicted))
	return w.missDelay()
}

// missDelay charges one region registration, with the same jitter the
// legacy model used.
func (w *rdmaWire) missDelay() time.Duration {
	w.cl.RegMisses++
	w.h.Telemetry().Inc(telemetry.CtrRDMARegMisses)
	return time.Duration(float64(w.cfg.Params.MemRegCost) * (0.7 + 0.6*w.rng.Float64()))
}

// evictMissScale is the initial per-op registration-miss probability.
const evictMissScale = 0.007

// maxMergedBlocks caps a merged work request at the NVMe NLB field's
// range (CDW12 holds a 0's-based 16-bit block count).
const maxMergedBlocks = 65536

// mergeable reports whether a train entry may fold into a merged work
// request: IO reads always (the completion payload splits back by
// offset), IO writes only with modeled (virtual) payloads — merging
// real write payloads would need one contiguous wire buffer.
func mergeable(e *pdu.BatchEntry) bool {
	if e.Cmd.Flags&transport.AdminFlag != 0 {
		return false
	}
	switch e.Cmd.Opcode {
	case nvme.OpRead:
		return true
	case nvme.OpWrite:
		return e.Data == nil && e.VirtualLen > 0
	}
	return false
}

// mergeTrain folds physically contiguous same-direction commands in the
// train into single work requests (RDMAbox adjacent-request merging):
// an offset-sorted scan per (opcode, NSID) finds runs whose LBA ranges
// abut, each run posts as one work request carrying the leader
// (lowest-offset) CID and the summed block count, and a mergeGroup
// remembers the members so InterceptData/InterceptResp can split the
// completion back per CID — invisible to the session engine.
func (w *rdmaWire) mergeTrain(b *pdu.CmdBatch) {
	entries := b.Entries
	idx := w.mergeIdx[:0]
	for i := range entries {
		if mergeable(&entries[i]) {
			idx = append(idx, i)
		}
	}
	w.mergeIdx = idx
	if len(idx) < 2 {
		return
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := &entries[idx[a]], &entries[idx[b]]
		if ea.Cmd.Opcode != eb.Cmd.Opcode {
			return ea.Cmd.Opcode < eb.Cmd.Opcode
		}
		if ea.Cmd.NSID != eb.Cmd.NSID {
			return ea.Cmd.NSID < eb.Cmd.NSID
		}
		return ea.Cmd.SLBA() < eb.Cmd.SLBA()
	})
	dead := w.mergeDead[:0]
	for range entries {
		dead = append(dead, false)
	}
	w.mergeDead = dead
	folded := 0
	for s := 0; s < len(idx); {
		run := s + 1
		lead := &entries[idx[s]]
		end := lead.Cmd.SLBA() + uint64(lead.Cmd.NLB())
		blocks := int(lead.Cmd.NLB())
		for run < len(idx) {
			e := &entries[idx[run]]
			if e.Cmd.Opcode != lead.Cmd.Opcode || e.Cmd.NSID != lead.Cmd.NSID ||
				e.Cmd.SLBA() != end || blocks+int(e.Cmd.NLB()) > maxMergedBlocks {
				break
			}
			end += uint64(e.Cmd.NLB())
			blocks += int(e.Cmd.NLB())
			run++
		}
		if run-s >= 2 {
			folded += w.foldRun(entries, idx[s:run], blocks)
		}
		s = run
	}
	if folded == 0 {
		return
	}
	w.h.Telemetry().Add(telemetry.CtrRDMAMergedOps, int64(folded))
	out := entries[:0]
	for i := range entries {
		if !w.mergeDead[i] {
			out = append(out, entries[i])
		}
	}
	b.Entries = out
}

// foldRun rewrites the run's leader entry into the merged work request
// and registers the merge group. Returns the number of entries folded
// away (0 when a member cannot be resolved and the run is left alone).
func (w *rdmaWire) foldRun(entries []pdu.BatchEntry, run []int, blocks int) int {
	lead := &entries[run[0]]
	g := &mergeGroup{members: make([]mergeMember, 0, len(run))}
	for _, i := range run {
		e := &entries[i]
		pend, ok := w.h.LookupPending(e.Cmd.CID)
		if !ok {
			return 0
		}
		size := int(e.Cmd.NLB()) * transport.BlockSize
		g.members = append(g.members, mergeMember{pend: pend, cid: e.Cmd.CID, gen: pend.Gen, size: size})
		g.total += size
	}
	lead.Cmd.CDW12 = uint32(blocks - 1)
	if lead.Cmd.Opcode == nvme.OpWrite {
		lead.VirtualLen = g.total
	}
	for _, i := range run[1:] {
		w.mergeDead[i] = true
	}
	w.groups[lead.Cmd.CID] = g
	return len(run) - 1
}

// liveGroup resolves a merge group by leader CID, discarding it when the
// leader pending is stale (the CID was reaped and reused: the incoming
// PDU belongs to a newer command, so the engine must handle it).
func (w *rdmaWire) liveGroup(cid uint16) *mergeGroup {
	g, ok := w.groups[cid]
	if !ok {
		return nil
	}
	lead := g.members[0]
	if pend, ok := w.h.LookupPending(cid); !ok || pend != lead.pend || pend.Gen != lead.gen {
		delete(w.groups, cid)
		return nil
	}
	return g
}

// InterceptData splits a merged read's single RDMA write back across the
// member buffers by offset (members are stored in ascending LBA order,
// which is payload order).
func (w *rdmaWire) InterceptData(p *sim.Proc, d *pdu.Data, transit time.Duration) bool {
	g := w.liveGroup(d.CID)
	if g == nil {
		return false
	}
	off := 0
	for _, m := range g.members {
		if pend, ok := w.h.LookupPending(m.cid); ok && pend == m.pend && pend.Gen == m.gen {
			if d.Payload != nil && pend.IO.Data != nil && off < len(d.Payload) {
				end := off + m.size
				if end > len(d.Payload) {
					end = len(d.Payload)
				}
				copy(pend.IO.Data, d.Payload[off:end])
			}
			pend.Received += m.size
			pend.Comm += transit
		} else {
			w.h.NoteLate()
		}
		transit = 0
		off += m.size
	}
	return true
}

// InterceptResp fans a merged work request's single completion back out
// to the member commands through the engine's normal completion path.
// Device time is split proportionally to member size; message transit
// and target-side overheads are attributed once.
func (w *rdmaWire) InterceptResp(p *sim.Proc, r *pdu.CapsuleResp, transit time.Duration) bool {
	g := w.liveGroup(r.Rsp.CID)
	if g == nil {
		return false
	}
	delete(w.groups, r.Rsp.CID)
	for i, m := range g.members {
		pend, ok := w.h.LookupPending(m.cid)
		if !ok || pend != m.pend || pend.Gen != m.gen {
			w.h.NoteLate()
			continue
		}
		w.respScratch = *r
		w.respScratch.Rsp.CID = m.cid
		w.respScratch.IOTimeNs = uint64(float64(r.IOTimeNs) * float64(m.size) / float64(g.total))
		if i > 0 {
			w.respScratch.TgtCommNs, w.respScratch.TgtOtherNs = 0, 0
		}
		w.h.DeliverResp(p, &w.respScratch, transit)
		transit = 0
	}
	return true
}

// ServerConfig configures the target side.
type ServerConfig struct {
	NQN    string
	Params model.RDMAParams
	Host   model.HostParams
	// BatchSize > 1 enables completion-reap coalescing on transmit.
	BatchSize int
	// KATO is the keep-alive timeout: a connection silent for longer is
	// torn down (0 disables the watchdog).
	KATO time.Duration
	// Telemetry receives connection and keep-alive counters (nil
	// disables).
	Telemetry *telemetry.Sink
	// QoS is the target-side per-tenant admission shaper (nil = off).
	QoS *qos.Shaper
}

// Server is the target-side RDMA transport: direct data placement into
// pre-registered buffers, so no buffer pool and no R2T machinery — the
// session engine drives connection lifecycle, dispatch, and teardown.
type Server struct {
	*session.Target
	cfg ServerConfig
}

// NewServer creates the RDMA transport for tgt.
func NewServer(e *sim.Engine, tgt *target.Target, cfg ServerConfig) *Server {
	s := &Server{cfg: cfg}
	s.Target = session.NewTarget(e, tgt, session.TargetConfig{
		Label:     "rdma",
		NQN:       cfg.NQN,
		BatchSize: cfg.BatchSize,
		KATO:      cfg.KATO,
		// Direct placement: no chunk pool, no busy-poll budget, and CQ
		// polling never charges interrupt wakeups.
		InterruptWakeups: false,
		Telemetry:        cfg.Telemetry,
		QoS:              cfg.QoS,
	}, (*rdmaTargetWire)(s))
	return s
}

// rdmaTargetWire binds the engine's connections to direct data placement.
type rdmaTargetWire Server

func (s *rdmaTargetWire) NewConn(c *session.Conn) session.ConnWire {
	return &rdmaConnWire{s: (*Server)(s), c: c}
}

// rdmaConnWire is the per-connection RDMA wire: a bare CM-exchange
// handshake, reads returned as one RDMA write, writes executed straight
// from the capsule payload.
type rdmaConnWire struct {
	s *Server
	c *session.Conn
}

func (w *rdmaConnWire) OnICReq(req *pdu.ICReq) {
	w.c.Target().Telemetry().Inc(telemetry.CtrSrvTCPConns)
	w.c.Post(nil, &pdu.ICResp{PFV: req.PFV})
}

func (w *rdmaConnWire) TrType() uint8 { return nvme.TrTypeRDMA }

func (w *rdmaConnWire) PreLoop() {}

func (w *rdmaConnWire) DispatchRead(cmd nvme.Command, transit time.Duration) {
	c := w.c
	size := int(cmd.NLB()) * transport.BlockSize
	c.Target().Engine().Go("rdma-read-worker", func(p *sim.Proc) {
		res := c.Target().Subsys().ExecuteAs(p, w.s.cfg.NQN, c.Tenant(), cmd, nil)
		if res.CQE.Status.IsError() {
			c.Post(nil, c.Resp(res, transit, 0))
			return
		}
		// One RDMA write moves the whole payload; the completion
		// capsule rides behind it.
		d := &pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Last: true}
		if res.Data != nil {
			d.Payload = res.Data
		} else {
			d.VirtualLen = size
		}
		c.Post(nil, d, c.Resp(res, transit, 0))
	})
}

func (w *rdmaConnWire) DispatchWrite(cap *pdu.CapsuleCmd, size int, transit time.Duration) {
	// The HCA already placed the payload: execute straight from the
	// capsule, no pool buffers, no R2T.
	w.c.ExecWrite(cap.Cmd, size, cap.Data, transit, nil, 0)
}

func (w *rdmaConnWire) HandlePDU(p *sim.Proc, u pdu.PDU, transit time.Duration) bool {
	return false
}

func (w *rdmaConnWire) Teardown() {}
