// Package rdma implements the NVMe/RDMA baseline transport: kernel-bypass
// queue pairs with direct data placement (no R2T round trip, no
// application-level chunking, near-zero per-byte host cost) and a memory-
// registration cache whose misses inject the large latencies behind
// RDMA's short-run tail behaviour (§5.4, Fig 13 of the paper).
//
// The paper evaluates NVMe/RDMA over 56 Gb IB FDR (SR-IOV) and NVMe/RoCE
// over 100 GbE on bare metal; both are instances of this transport with
// different model.RDMAParams.
package rdma

import (
	"fmt"
	"math"
	"time"

	"nvmeoaf/internal/model"
	"nvmeoaf/internal/netsim"
	"nvmeoaf/internal/nvme"
	"nvmeoaf/internal/pdu"
	"nvmeoaf/internal/sim"
	"nvmeoaf/internal/target"
	"nvmeoaf/internal/transport"
)

// LinkParams converts RDMA fabric parameters into link-model terms: the
// HCA moves payload bytes without host CPU, and completion-queue polling
// avoids interrupt wakeups.
func LinkParams(r model.RDMAParams) model.LinkParams {
	return model.LinkParams{
		Name:            r.Name,
		WireBytesPerSec: r.WireBytesPerSec,
		Propagation:     r.Propagation,
		PerMsgCPU:       r.PerOpCPU,
		PerByteCPUNanos: 0,
		WakeupPenalty:   0,
	}
}

// ClientConfig configures one NVMe/RDMA host queue pair.
type ClientConfig struct {
	NQN        string
	QueueDepth int
	Params     model.RDMAParams
	Host       model.HostParams
}

// Client is the host side of one RDMA queue pair.
type Client struct {
	e       *sim.Engine
	ep      *netsim.Endpoint
	cfg     ClientConfig
	cids    *nvme.CIDTable
	submitQ *sim.Queue[*transport.Pending]
	kick    *sim.Signal
	closing bool
	drained *sim.Signal
	rng     interface{ Float64() float64 }

	// Completed counts finished commands; it also drives the
	// registration-cache warmup model.
	Completed int64
	// RegMisses counts memory-registration cache misses.
	RegMisses int64
}

// Connect starts a client on ep (connection setup over the RDMA CM is
// modeled by the ICReq/ICResp exchange).
func Connect(p *sim.Proc, ep *netsim.Endpoint, cfg ClientConfig) (*Client, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	e := p.Engine()
	c := &Client{
		e:       e,
		ep:      ep,
		cfg:     cfg,
		cids:    nvme.NewCIDTable(cfg.QueueDepth),
		submitQ: sim.NewQueue[*transport.Pending](e, 0),
		kick:    sim.NewSignal(e),
		drained: sim.NewSignal(e),
		rng:     e.Rand("rdma/" + cfg.Params.Name),
	}
	transport.SendPDUs(p, ep, &pdu.ICReq{PFV: 0})
	msg := ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return nil, fmt.Errorf("rdma: handshake: %w", err)
	}
	if _, ok := pdus[0].(*pdu.ICResp); !ok {
		return nil, fmt.Errorf("rdma: handshake: unexpected %v", pdus[0].Type())
	}
	if err := fabricsConnect(p, ep, cfg.NQN); err != nil {
		return nil, err
	}
	e.GoDaemon("rdma-client-reactor", c.reactor)
	return c, nil
}

// fabricsConnect performs the NVMe-oF Connect command.
func fabricsConnect(p *sim.Proc, ep *netsim.Endpoint, subNQN string) error {
	cmd := nvme.Command{Opcode: nvme.FabricsCommandType, CID: 0xFFFF, CDW10: nvme.FctypeConnect}
	transport.SendPDUs(p, ep, &pdu.CapsuleCmd{
		Cmd:  cmd,
		Data: nvme.EncodeConnectData("nqn.2014-08.org.nvmexpress:uuid:sim-host", subNQN),
	})
	msg := ep.Recv(p)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		return fmt.Errorf("rdma: connect: %w", err)
	}
	resp, ok := pdus[0].(*pdu.CapsuleResp)
	if !ok {
		return fmt.Errorf("rdma: connect: unexpected %v", pdus[0].Type())
	}
	if resp.Rsp.Status.IsError() {
		return fmt.Errorf("rdma: connect rejected: %w", resp.Rsp.Status.Error())
	}
	return nil
}

// Submit implements transport.Queue.
func (c *Client) Submit(p *sim.Proc, io *transport.IO) *sim.Future[*transport.Result] {
	fut := sim.NewFuture[*transport.Result](c.e)
	if c.closing {
		fut.Resolve(&transport.Result{Status: nvme.StatusAbortRequested})
		return fut
	}
	if io.Admin == 0 && !io.Flush && (io.Size <= 0 || io.Size%transport.BlockSize != 0 || io.Offset%transport.BlockSize != 0) {
		fut.Resolve(&transport.Result{Status: nvme.StatusInvalidField})
		return fut
	}
	if io.Write && !io.NoFill {
		p.Sleep(time.Duration(float64(io.Size) * c.cfg.Host.FillPerByteNanos))
	}
	p.Sleep(c.cfg.Host.SubmitCPU)
	pend := &transport.Pending{IO: io, Fut: fut, SubmitAt: p.Now()}
	c.submitQ.TryPut(pend)
	c.kick.Fire()
	return fut
}

// Close initiates orderly shutdown.
func (c *Client) Close() {
	if c.closing {
		return
	}
	c.closing = true
	c.kick.Fire()
}

// WaitClosed blocks until the reactor has exited.
func (c *Client) WaitClosed(p *sim.Proc) { c.drained.Wait(p) }

// registrationDelay models the HCA memory-registration cache. The I/O
// buffer pool registers at connect time; during a run the registration
// cache occasionally misses (buffer-pool growth, eviction, fragmentation)
// and the affected command must wait for a multi-millisecond region
// registration (page pinning + HCA table update). The miss probability
// decays with completed work, so a short run carries a heavy registration
// tail that a 3-4x longer run dilutes below the p99.9/p99.99 thresholds —
// the paper's §5.4 observation. The expected number of events converges
// to evictMissScale x MemRegWarmOps.
func (c *Client) registrationDelay() time.Duration {
	prm := c.cfg.Params
	prob := evictMissScale*math.Exp(-float64(c.Completed)/prm.MemRegWarmOps) + prm.MemRegFloorProb
	if c.rng.Float64() >= prob {
		return 0
	}
	c.RegMisses++
	return time.Duration(float64(prm.MemRegCost) * (0.7 + 0.6*c.rng.Float64()))
}

// evictMissScale is the initial per-op registration-miss probability.
const evictMissScale = 0.007

// reactor is the client event loop: CQ polling, no interrupt penalty.
func (c *Client) reactor(p *sim.Proc) {
	c.ep.OnDeliver = c.kick.Fire
	defer c.drained.Fire()
	for {
		worked := false
		for !c.cids.Full() {
			pend, ok := c.submitQ.TryGet()
			if !ok {
				break
			}
			c.start(p, pend)
			worked = true
		}
		for {
			msg := c.ep.TryRecv(p)
			if msg == nil {
				break
			}
			c.handle(p, msg)
			worked = true
		}
		if worked {
			continue
		}
		if c.closing && c.cids.Outstanding() == 0 && c.submitQ.Len() == 0 {
			transport.SendPDUs(p, c.ep, &pdu.Term{Dir: pdu.TypeH2CTermReq})
			return
		}
		c.kick.Reset()
		if c.ep.Pending() > 0 || (!c.cids.Full() && c.submitQ.Len() > 0) {
			continue
		}
		c.kick.Wait(p)
	}
}

// start posts the work request for one command. Writes carry their full
// payload with the capsule: the target's HCA places the data directly
// into the reserved buffer (no R2T exchange).
func (c *Client) start(p *sim.Proc, pend *transport.Pending) {
	cid, err := c.cids.Alloc(pend)
	if err != nil {
		panic(err)
	}
	pend.CID = cid
	io := pend.IO
	var cmd nvme.Command
	if io.Admin != 0 {
		cmd = nvme.Command{Opcode: io.Admin, CID: cid, NSID: io.NSID, CDW10: io.CDW10, Flags: transport.AdminFlag}
		transport.SendPDUs(p, c.ep, &pdu.CapsuleCmd{Cmd: cmd})
		return
	}
	if io.Flush {
		transport.SendPDUs(p, c.ep, &pdu.CapsuleCmd{Cmd: nvme.NewFlush(cid, io.Nsid())})
		return
	}
	slba := uint64(io.Offset / transport.BlockSize)
	nlb := uint32(io.Size / transport.BlockSize)
	var capsule *pdu.CapsuleCmd
	if io.Write {
		cmd = nvme.NewWrite(cid, io.Nsid(), slba, nlb)
		capsule = &pdu.CapsuleCmd{Cmd: cmd}
		if io.Data != nil {
			capsule.Data = io.Data
		} else {
			capsule.VirtualLen = io.Size
		}
		pend.Sent = io.Size
	} else {
		cmd = nvme.NewRead(cid, io.Nsid(), slba, nlb)
		capsule = &pdu.CapsuleCmd{Cmd: cmd}
	}
	if delay := c.registrationDelay(); delay > 0 {
		// Registration runs on a kernel helper: only this command waits;
		// the reactor keeps serving the queue.
		ep := c.ep
		c.e.Go("rdma-memreg", func(w *sim.Proc) {
			w.Sleep(delay)
			transport.SendPDUs(w, ep, capsule)
		})
		return
	}
	transport.SendPDUs(p, c.ep, capsule)
}

// handle processes inbound completions and data.
func (c *Client) handle(p *sim.Proc, msg *netsim.Message) {
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("rdma client: bad message: %v", err))
	}
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.Data:
			ctx, ok := c.cids.Lookup(v.CID)
			if !ok {
				panic(fmt.Sprintf("rdma client: data for unknown CID %d", v.CID))
			}
			pend := ctx.(*transport.Pending)
			n := len(v.Payload)
			if n == 0 {
				n = v.VirtualLen
			}
			if v.Payload != nil && pend.IO.Data != nil {
				copy(pend.IO.Data[v.Offset:], v.Payload)
			}
			pend.Received += n
			pend.Comm += transit
		case *pdu.CapsuleResp:
			ctx, err := c.cids.Complete(v.Rsp.CID)
			if err != nil {
				panic(fmt.Sprintf("rdma client: %v", err))
			}
			pend := ctx.(*transport.Pending)
			pend.Comm += transit
			p.Sleep(c.cfg.Host.CompleteCPU)
			var data []byte
			if !pend.IO.Write && pend.IO.Data != nil {
				data = pend.IO.Data[:pend.Received]
			}
			pend.Finish(p.Now(), v, data)
			c.Completed++
			c.kick.Fire()
		case *pdu.Term:
		default:
			panic(fmt.Sprintf("rdma client: unexpected PDU %v", u.Type()))
		}
		transit = 0
	}
}

// ServerConfig configures the target side.
type ServerConfig struct {
	NQN    string
	Params model.RDMAParams
	Host   model.HostParams
}

// Server is the target-side RDMA transport.
type Server struct {
	e   *sim.Engine
	tgt *target.Target
	cfg ServerConfig
}

// NewServer creates the RDMA transport for tgt.
func NewServer(e *sim.Engine, tgt *target.Target, cfg ServerConfig) *Server {
	return &Server{e: e, tgt: tgt, cfg: cfg}
}

// Serve starts a connection handler on ep.
func (s *Server) Serve(ep *netsim.Endpoint) {
	conn := &conn{srv: s, ep: ep, txQ: sim.NewQueue[[]pdu.PDU](s.e, 0), kick: sim.NewSignal(s.e)}
	s.e.GoDaemon("rdma-server-conn", conn.run)
}

type conn struct {
	srv    *Server
	ep     *netsim.Endpoint
	txQ    *sim.Queue[[]pdu.PDU]
	kick   *sim.Signal
	closed bool
}

func (c *conn) post(pdus ...pdu.PDU) {
	c.txQ.TryPut(pdus)
	c.kick.Fire()
}

func (c *conn) run(p *sim.Proc) {
	c.ep.OnDeliver = c.kick.Fire
	for !c.closed {
		worked := false
		for {
			msg := c.ep.TryRecv(p)
			if msg == nil {
				break
			}
			c.handle(p, msg)
			worked = true
		}
		for {
			batch, ok := c.txQ.TryGet()
			if !ok {
				break
			}
			transport.SendPDUs(p, c.ep, batch...)
			worked = true
		}
		if worked {
			continue
		}
		c.kick.Reset()
		if c.ep.Pending() > 0 || c.txQ.Len() > 0 || c.closed {
			continue
		}
		c.kick.Wait(p)
	}
	for {
		batch, ok := c.txQ.TryGet()
		if !ok {
			break
		}
		transport.SendPDUs(p, c.ep, batch...)
	}
}

func (c *conn) handle(p *sim.Proc, msg *netsim.Message) {
	transit := p.Now().Sub(msg.SentAt)
	pdus, err := transport.DecodeAll(msg)
	if err != nil {
		panic(fmt.Sprintf("rdma server: bad message: %v", err))
	}
	for _, u := range pdus {
		switch v := u.(type) {
		case *pdu.ICReq:
			c.post(&pdu.ICResp{PFV: v.PFV})
		case *pdu.CapsuleCmd:
			c.onCommand(v, transit)
		case *pdu.Term:
			c.closed = true
			c.kick.Fire()
		default:
			panic(fmt.Sprintf("rdma server: unexpected PDU %v", u.Type()))
		}
		transit = 0
	}
}

func (c *conn) onCommand(cap *pdu.CapsuleCmd, transit time.Duration) {
	cmd := cap.Cmd
	if cmd.Opcode == nvme.FabricsCommandType {
		status := nvme.StatusInvalidField
		if cmd.CDW10 == nvme.FctypeConnect {
			if _, subNQN, err := nvme.DecodeConnectData(cap.Data); err == nil && subNQN == c.srv.cfg.NQN {
				status = nvme.StatusSuccess
			}
		}
		c.post(&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: status}})
		return
	}
	if cmd.Flags&transport.AdminFlag != 0 {
		c.onAdmin(cmd, transit)
		return
	}
	switch cmd.Opcode {
	case nvme.OpRead:
		size := int(cmd.NLB()) * transport.BlockSize
		c.srv.e.Go("rdma-read-worker", func(w *sim.Proc) {
			res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, nil)
			if res.CQE.Status.IsError() {
				c.post(c.resp(res, transit))
				return
			}
			// One RDMA write moves the whole payload; the completion
			// capsule rides behind it.
			d := &pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Last: true}
			if res.Data != nil {
				d.Payload = res.Data
			} else {
				d.VirtualLen = size
			}
			c.post(d, c.resp(res, transit))
		})
	case nvme.OpWrite:
		data := cap.Data
		c.srv.e.Go("rdma-write-worker", func(w *sim.Proc) {
			res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, data)
			c.post(c.resp(res, transit))
		})
	case nvme.OpFlush:
		c.srv.e.Go("rdma-flush-worker", func(w *sim.Proc) {
			res := c.srv.tgt.Execute(w, c.srv.cfg.NQN, cmd, nil)
			c.post(c.resp(res, transit))
		})
	default:
		c.post(&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

// onAdmin dispatches admin-queue commands.
func (c *conn) onAdmin(cmd nvme.Command, transit time.Duration) {
	switch cmd.Opcode {
	case nvme.AdminIdentify:
		c.onIdentify(cmd, transit)
	case nvme.AdminGetLogPage:
		if cmd.CDW10&0xFF != nvme.LIDDiscovery&0xFF {
			c.post(&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
			return
		}
		page := c.srv.tgt.DiscoveryLog(nvme.TrTypeRDMA, "storage-host")
		c.post(
			&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
			&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess}, TgtCommNs: uint64(transit)},
		)
	default:
		c.post(&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidOpcode}})
	}
}

func (c *conn) onIdentify(cmd nvme.Command, transit time.Duration) {
	var page []byte
	switch cmd.CDW10 {
	case nvme.CNSController:
		id, err := c.srv.tgt.IdentifyController(c.srv.cfg.NQN)
		if err == nil {
			page = id.Encode()
		}
	case nvme.CNSNamespace:
		if sub, ok := c.srv.tgt.Subsystem(c.srv.cfg.NQN); ok {
			if ns, ok := sub.Namespace(cmd.NSID); ok {
				idns := ns.Identify()
				page = idns.Encode()
			}
		}
	}
	if page == nil {
		c.post(&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusInvalidField}})
		return
	}
	c.post(
		&pdu.Data{Dir: pdu.TypeC2HData, CID: cmd.CID, Payload: page, Last: true},
		&pdu.CapsuleResp{Rsp: nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess}, TgtCommNs: uint64(transit)},
	)
}

func (c *conn) resp(res target.ExecResult, comm time.Duration) *pdu.CapsuleResp {
	return &pdu.CapsuleResp{
		Rsp:        res.CQE,
		IOTimeNs:   uint64(res.IOTime),
		TgtCommNs:  uint64(comm),
		TgtOtherNs: uint64(res.OtherTime),
	}
}
