package hdf5

import (
	"bytes"
	"fmt"
	"testing"

	"nvmeoaf/internal/sim"
)

// memStorage is an in-memory Storage for format tests.
type memStorage struct {
	buf     []byte
	flushes int
}

func newMem(size int) *memStorage { return &memStorage{buf: make([]byte, size)} }

func (m *memStorage) WriteAt(p *sim.Proc, off int64, data []byte, size int) error {
	if off < 0 || off+int64(size) > int64(len(m.buf)) {
		return fmt.Errorf("mem: out of range")
	}
	if data != nil {
		copy(m.buf[off:], data[:size])
	}
	return nil
}

func (m *memStorage) ReadAt(p *sim.Proc, off int64, buf []byte, size int) error {
	if off < 0 || off+int64(size) > int64(len(m.buf)) {
		return fmt.Errorf("mem: out of range")
	}
	if buf != nil {
		copy(buf[:size], m.buf[off:])
	}
	return nil
}

func (m *memStorage) Flush(p *sim.Proc) error { m.flushes++; return nil }

// run executes fn inside a simulation.
func run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e := sim.NewEngine(1)
	e.Go("test", fn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWriteReadReopen(t *testing.T) {
	st := newMem(1 << 22)
	run(t, func(p *sim.Proc) {
		f := Create(st)
		d, err := f.CreateDataset("x", 8, 1000)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 1000)
		if err := d.Write(p, 0, 1000, payload); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
		if st.flushes == 0 {
			t.Fatal("close must flush")
		}

		g, err := Open(p, st)
		if err != nil {
			t.Fatal(err)
		}
		d2, ok := g.Dataset("x")
		if !ok {
			t.Fatal("dataset lost after reopen")
		}
		if d2.ElemSize != 8 || d2.Count != 1000 || d2.DataOff != d.DataOff {
			t.Fatalf("metadata mismatch: %+v vs %+v", d2, d)
		}
		got := make([]byte, 8000)
		if err := d2.Read(p, 0, 1000, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch after reopen")
		}
	})
}

func TestMultipleDatasetsDisjointExtents(t *testing.T) {
	st := newMem(1 << 24)
	run(t, func(p *sim.Proc) {
		f := Create(st)
		var ds []*Dataset
		for i := 0; i < 8; i++ {
			d, err := f.CreateDataset(fmt.Sprintf("var%d", i), 4, 1000)
			if err != nil {
				t.Fatal(err)
			}
			ds = append(ds, d)
		}
		for i, a := range ds {
			for j, b := range ds {
				if i == j {
					continue
				}
				if a.DataOff < b.DataOff+b.Bytes() && b.DataOff < a.DataOff+a.Bytes() {
					t.Fatalf("extents of %d and %d overlap", i, j)
				}
			}
		}
		// Partial writes at element granularity.
		for i, d := range ds {
			pat := bytes.Repeat([]byte{byte(i + 1)}, 400)
			if err := d.Write(p, 100, 100, pat); err != nil {
				t.Fatal(err)
			}
		}
		for i, d := range ds {
			got := make([]byte, 400)
			if err := d.Read(p, 100, 100, got); err != nil {
				t.Fatal(err)
			}
			for _, v := range got {
				if v != byte(i+1) {
					t.Fatalf("dataset %d cross-contaminated", i)
				}
			}
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
		g, err := Open(p, st)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Datasets()) != 8 {
			t.Fatalf("reopened %d datasets", len(g.Datasets()))
		}
	})
}

func TestValidation(t *testing.T) {
	st := newMem(1 << 20)
	run(t, func(p *sim.Proc) {
		f := Create(st)
		if _, err := f.CreateDataset("", 4, 10); err == nil {
			t.Error("empty name accepted")
		}
		if _, err := f.CreateDataset("x", 0, 10); err == nil {
			t.Error("zero elem size accepted")
		}
		if _, err := f.CreateDataset("x", 4, -1); err == nil {
			t.Error("negative count accepted")
		}
		d, err := f.CreateDataset("x", 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.CreateDataset("x", 4, 10); err == nil {
			t.Error("duplicate name accepted")
		}
		if err := d.Write(p, 5, 10, nil); err == nil {
			t.Error("out-of-range write accepted")
		}
		if err := d.Write(p, 0, 2, []byte{1, 2, 3}); err == nil {
			t.Error("mismatched data length accepted")
		}
		if err := d.Read(p, -1, 2, nil); err == nil {
			t.Error("negative element offset accepted")
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
		if _, err := f.CreateDataset("y", 4, 10); err == nil {
			t.Error("create after close accepted")
		}
	})
}

func TestOpenRejectsGarbage(t *testing.T) {
	st := newMem(1 << 16)
	run(t, func(p *sim.Proc) {
		copy(st.buf, "NOTHDF5!")
		if _, err := Open(p, st); err == nil {
			t.Error("garbage superblock accepted")
		}
	})
}

func TestVirtualPayloadDatasets(t *testing.T) {
	// Modeled payloads: writes/reads with nil buffers succeed and only
	// metadata bytes materialize.
	st := newMem(1 << 26)
	run(t, func(p *sim.Proc) {
		f := Create(st)
		d, err := f.CreateDataset("big", 8, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(p, 0, 1<<20, nil); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
		g, err := Open(p, st)
		if err != nil {
			t.Fatal(err)
		}
		d2 := g.Datasets()[0]
		if d2.Bytes() != 8<<20 {
			t.Fatalf("size %d", d2.Bytes())
		}
		if err := d2.Read(p, 0, 1<<20, nil); err != nil {
			t.Fatal(err)
		}
	})
}
