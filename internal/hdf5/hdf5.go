// Package hdf5 implements a miniature HDF5-style container sufficient for
// the paper's h5bench workloads: a superblock, a dataset table, and
// contiguous 1-D datasets of fixed-size elements. Real bytes are written
// for all metadata; dataset payloads may be modeled (virtual) so that
// multi-gigabyte kernels stay within host memory.
//
// All I/O flows through the Storage interface, which the VOL connector
// (package vol) implements over the adaptive fabric and the NFS client
// (package nfs) implements over its page cache — exactly the interception
// seam the paper uses to co-design HDF5 with NVMe-oAF (§5.7.1).
package hdf5

import (
	"encoding/binary"
	"fmt"

	"nvmeoaf/internal/sim"
)

// Storage is the byte-addressed backend beneath an HDF5 file.
type Storage interface {
	// WriteAt stores size bytes at off; data may be nil for modeled
	// payloads.
	WriteAt(p *sim.Proc, off int64, data []byte, size int) error
	// ReadAt loads size bytes at off into buf (nil for modeled).
	ReadAt(p *sim.Proc, off int64, buf []byte, size int) error
	// Flush makes all buffered writes durable (file close semantics).
	Flush(p *sim.Proc) error
}

const (
	magic         = "OAFHDF5\x00"
	superblockOff = 0
	superblockLen = 64
	// dataStart is the first data extent offset (metadata reserved below).
	dataStart = 1 << 16
	// tableEntryLen is the on-disk size of one dataset table entry.
	tableEntryLen = 64 + 4 + 8 + 8 + 8
	nameLen       = 64
)

// Dataset is one contiguous 1-D dataset.
type Dataset struct {
	Name     string
	ElemSize int
	Count    int64
	// DataOff is the dataset's extent offset within the file.
	DataOff int64

	file *File
}

// Bytes returns the dataset payload size.
func (d *Dataset) Bytes() int64 { return d.Count * int64(d.ElemSize) }

// File is an open container.
type File struct {
	st       Storage
	datasets []*Dataset
	byName   map[string]*Dataset
	nextData int64
	writable bool
}

// Create starts a new empty container on st.
func Create(st Storage) *File {
	return &File{
		st:       st,
		byName:   make(map[string]*Dataset),
		nextData: dataStart,
		writable: true,
	}
}

// CreateDataset allocates a contiguous extent for count elements of
// elemSize bytes.
func (f *File) CreateDataset(name string, elemSize int, count int64) (*Dataset, error) {
	if !f.writable {
		return nil, fmt.Errorf("hdf5: file not writable")
	}
	if len(name) == 0 || len(name) > nameLen {
		return nil, fmt.Errorf("hdf5: invalid dataset name %q", name)
	}
	if elemSize <= 0 || count <= 0 {
		return nil, fmt.Errorf("hdf5: invalid dataset geometry %dx%d", count, elemSize)
	}
	if _, dup := f.byName[name]; dup {
		return nil, fmt.Errorf("hdf5: dataset %q already exists", name)
	}
	d := &Dataset{Name: name, ElemSize: elemSize, Count: count, DataOff: f.nextData, file: f}
	// Extents are 4 KiB aligned so dataset I/O stays block aligned.
	size := (d.Bytes() + 4095) / 4096 * 4096
	f.nextData += size
	f.datasets = append(f.datasets, d)
	f.byName[name] = d
	return d, nil
}

// Dataset returns a dataset by name.
func (f *File) Dataset(name string) (*Dataset, bool) {
	d, ok := f.byName[name]
	return d, ok
}

// Datasets lists datasets in creation order.
func (f *File) Datasets() []*Dataset { return f.datasets }

// Write stores count elements starting at element offset elemOff. data
// carries real bytes or is nil for a modeled payload.
func (d *Dataset) Write(p *sim.Proc, elemOff, count int64, data []byte) error {
	if err := d.checkRange(elemOff, count); err != nil {
		return err
	}
	if data != nil && int64(len(data)) != count*int64(d.ElemSize) {
		return fmt.Errorf("hdf5: data length %d != %d elements", len(data), count)
	}
	off := d.DataOff + elemOff*int64(d.ElemSize)
	return d.file.st.WriteAt(p, off, data, int(count*int64(d.ElemSize)))
}

// Read loads count elements starting at elemOff into buf (nil = modeled).
func (d *Dataset) Read(p *sim.Proc, elemOff, count int64, buf []byte) error {
	if err := d.checkRange(elemOff, count); err != nil {
		return err
	}
	off := d.DataOff + elemOff*int64(d.ElemSize)
	return d.file.st.ReadAt(p, off, buf, int(count*int64(d.ElemSize)))
}

func (d *Dataset) checkRange(elemOff, count int64) error {
	if elemOff < 0 || count < 0 || elemOff+count > d.Count {
		return fmt.Errorf("hdf5: range [%d,%d) outside dataset %q of %d elements",
			elemOff, elemOff+count, d.Name, d.Count)
	}
	return nil
}

// Close writes the dataset table and superblock and flushes the backend.
func (f *File) Close(p *sim.Proc) error {
	if !f.writable {
		return f.st.Flush(p)
	}
	// Dataset table sits right after the superblock.
	table := make([]byte, len(f.datasets)*tableEntryLen)
	le := binary.LittleEndian
	for i, d := range f.datasets {
		e := table[i*tableEntryLen:]
		copy(e[:nameLen], d.Name)
		le.PutUint32(e[nameLen:], uint32(d.ElemSize))
		le.PutUint64(e[nameLen+4:], uint64(d.Count))
		le.PutUint64(e[nameLen+12:], uint64(d.DataOff))
		le.PutUint64(e[nameLen+20:], uint64(d.Bytes()))
	}
	if len(table) > 0 {
		if err := f.st.WriteAt(p, superblockLen, table, len(table)); err != nil {
			return err
		}
	}
	sb := make([]byte, superblockLen)
	copy(sb, magic)
	le.PutUint32(sb[8:], 1) // version
	le.PutUint32(sb[12:], uint32(len(f.datasets)))
	le.PutUint64(sb[16:], uint64(f.nextData)) // end of file
	if err := f.st.WriteAt(p, superblockOff, sb, superblockLen); err != nil {
		return err
	}
	f.writable = false
	return f.st.Flush(p)
}

// Open reads an existing container's metadata from st.
func Open(p *sim.Proc, st Storage) (*File, error) {
	sb := make([]byte, superblockLen)
	if err := st.ReadAt(p, superblockOff, sb, superblockLen); err != nil {
		return nil, err
	}
	if string(sb[:8]) != magic {
		return nil, fmt.Errorf("hdf5: bad superblock magic %q", sb[:8])
	}
	le := binary.LittleEndian
	n := int(le.Uint32(sb[12:]))
	f := &File{st: st, byName: make(map[string]*Dataset), nextData: int64(le.Uint64(sb[16:]))}
	if n > 0 {
		table := make([]byte, n*tableEntryLen)
		if err := st.ReadAt(p, superblockLen, table, len(table)); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			e := table[i*tableEntryLen:]
			name := e[:nameLen]
			end := 0
			for end < nameLen && name[end] != 0 {
				end++
			}
			d := &Dataset{
				Name:     string(name[:end]),
				ElemSize: int(le.Uint32(e[nameLen:])),
				Count:    int64(le.Uint64(e[nameLen+4:])),
				DataOff:  int64(le.Uint64(e[nameLen+12:])),
				file:     f,
			}
			f.datasets = append(f.datasets, d)
			f.byName[d.Name] = d
		}
	}
	return f, nil
}
