#!/bin/sh
# Regenerate the full reproduction artifact set:
#   1. run the complete test suite (unit, integration, property, shape tests)
#   2. regenerate every table/figure series
#   3. run the per-figure + ablation benchmarks
# Results land in test_output.txt, figures_output.txt, bench_output.txt.
set -e
cd "$(dirname "$0")/.."

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== figures (tables for EXPERIMENTS.md) =="
go run ./cmd/figures -fig all 2>&1 | tee figures_output.txt

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
