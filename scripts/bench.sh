#!/bin/sh
# Benchmark sweep: run a small fabric matrix through oafperf -stats-json
# (perf numbers, fabric telemetry, pool stats), a cache on/off pair on
# the Zipfian hot-set workload, a replication scaling sweep (the 4 KiB
# randread namespace sharded over 1, 2, and 4 member targets, plus a
# 4-target run with a mid-run member crash), a ring-vs-futures sweep
# (the 4 KiB randread workload driven through the future-based API and
# the SQ/CQ ring fast path at QD 64 and 256 on tcp-25g), an rdma
# fast-path sweep (4 KiB randread on rdma-ib56: regcache on/off x merge
# on/off at QD 16 and 64, dynamic doorbells riding with the full fast
# path), an online self-tuning sweep (the 4 KiB randread workload from
# the worst static batch config: static-bad vs tuned vs hand-swept
# static best, plus a tuned run with a mid-window 128K-seq flip), then
# the batching and ring wall-clock benchmarks
# (`go test -bench QD`), and
# collect everything into one JSON report. The bench section records,
# per configuration, the simulator's own wall-clock ns/op and allocs/op
# next to the simulated GB/s and IOPS it achieved, so allocation
# regressions on the batched and ring hot paths show up in CI artifacts.
#
# Environment knobs (all optional):
#   BENCH_OUT      output file            (default BENCH_pr7.json)
#   BENCH_DURATION measured window        (default 500ms; CI smoke: 50ms)
#   BENCH_QD       queue depth            (default 64)
#   BENCH_SIZE     I/O size               (default 128K)
#   BENCH_BATCH    coalescing depth       (default 16)
#   BENCH_QUEUES   queue pairs per stream (default 4)
#   BENCH_FABRICS  fabrics to sweep       (default "nvme-oaf tcp-25g")
#   BENCH_ZIPF     hot-set skew for the cache pair (default 0.99)
#   BENCH_CACHE    cache size for the cache pair   (default 256M; empty skips)
#   BENCH_CLUSTER  non-empty sweeps replication scaling (default on; empty skips)
#   BENCH_RING     non-empty sweeps ring vs futures (default on; empty skips)
#   BENCH_RDMA     non-empty sweeps the rdma fast path (default on; empty skips)
#   BENCH_TUNE     non-empty sweeps the online self-tuner (default on; empty skips)
#   BENCH_TENANTS  non-empty sweeps per-tenant QoS (default on; empty skips)
#   BENCH_TUNE_DURATION window for the tuner runs (default 2s; the flip fires at 1s)
#   BENCH_GOBENCH  benchtime for go test  (default 3x; empty skips)
set -e
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_pr10.json}
DUR=${BENCH_DURATION:-500ms}
QD=${BENCH_QD:-64}
SIZE=${BENCH_SIZE:-128K}
BATCH=${BENCH_BATCH:-16}
QUEUES=${BENCH_QUEUES:-4}
FABRICS=${BENCH_FABRICS:-"nvme-oaf tcp-25g"}
ZIPF=${BENCH_ZIPF:-0.99}
CACHE=${BENCH_CACHE:-256M}
CLUSTER=${BENCH_CLUSTER:-on}
RING=${BENCH_RING:-on}
RDMA=${BENCH_RDMA:-on}
TUNE=${BENCH_TUNE:-on}
TENANTS=${BENCH_TENANTS:-on}
TUNE_DUR=${BENCH_TUNE_DURATION:-2s}
GOBENCH=${BENCH_GOBENCH:-3x}

TMP=$(mktemp -d)
BIN=$TMP/oafperf
trap 'rm -rf "$TMP"' EXIT
go build -o "$BIN" ./cmd/oafperf

# go_bench runs the QD-series batching and ring benchmarks and rewrites
# the standard `go test -bench` lines into JSON objects with ns/op,
# allocs/op, and the reported sim-GB/s / sim-IOPS metrics.
go_bench() {
	go test ./internal/exp/ -run 'NO_TESTS' -bench 'BenchmarkQD' \
		-benchtime "$GOBENCH" 2>/dev/null |
		awk '
		/^BenchmarkQD/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""; allocs = ""; gbps = ""; iops = ""
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				if ($(i+1) == "allocs/op") allocs = $i
				if ($(i+1) == "sim-GB/s") gbps = $i
				if ($(i+1) == "sim-IOPS") iops = $i
			}
			if (n++) printf ",\n"
			printf "    {\"name\": \"%s\", \"wall_ns_per_op\": %s, \"allocs_per_op\": %s, \"sim_gbps\": %s, \"sim_iops\": %s}", \
				name, ns, allocs ? allocs : 0, gbps ? gbps : 0, iops ? iops : 0
		}
		END { printf "\n" }'
}

{
	printf '{\n'
	printf '  "bench": "batching-sweep",\n'
	printf '  "duration": "%s",\n' "$DUR"
	printf '  "runs": [\n'
	first=1
	for fab in $FABRICS; do
		for rw in read write; do
			[ $first -eq 1 ] || printf ',\n'
			first=0
			"$BIN" -fabric "$fab" -rw "$rw" -size "$SIZE" -qd "$QD" -t "$DUR" -stats-json
			printf ',\n'
			"$BIN" -fabric "$fab" -rw "$rw" -size "$SIZE" -qd "$QD" -t "$DUR" \
				-batch "$BATCH" -queues "$QUEUES" -stats-json
		done
	done
	# Cache pair: the Zipfian hot-set read workload with and without the
	# target-side cache, same batching/striping, so the report records the
	# cache gain next to the fabric matrix.
	if [ -n "$CACHE" ]; then
		printf ',\n'
		"$BIN" -fabric nvme-oaf -rw randread -size 4K -qd "$QD" -t "$DUR" \
			-zipf "$ZIPF" -batch "$BATCH" -queues "$QUEUES" -stats-json
		printf ',\n'
		"$BIN" -fabric nvme-oaf -rw randread -size 4K -qd "$QD" -t "$DUR" \
			-zipf "$ZIPF" -batch "$BATCH" -queues "$QUEUES" \
			-cache "$CACHE" -cache-mode wb -stats-json
	fi
	# Replication scaling: the same 4 KiB randread workload routed
	# through the sharded+replicated namespace layer as the member count
	# grows, then the 4-target geometry again with one member crashed
	# mid-window (failover + re-replication visible in the cluster and
	# fault sections of the run).
	if [ -n "$CLUSTER" ]; then
		for geo in "1 1" "2 2" "4 2"; do
			set -- $geo
			printf ',\n'
			"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$QD" -t "$DUR" \
				-targets "$1" -replicas "$2" -stats-json
		done
		printf ',\n'
		"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$QD" -t "$DUR" \
			-targets 4 -replicas 2 -crash-member 1 \
			-crash-at 20ms -crash-down 10ms -stats-json
	fi
	# Ring vs futures: the same 4 KiB randread workload at QD 64 and 256
	# on tcp-25g, once through the future-based Submit API and once
	# through the SQ/CQ ring fast path (which drains in batch-capsule
	# trains), so the report records the ring's IOPS advantage per depth.
	if [ -n "$RING" ]; then
		for rqd in 64 256; do
			printf ',\n'
			"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$rqd" -t "$DUR" \
				-stats-json
			printf ',\n'
			"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$rqd" -t "$DUR" \
				-ring -batch "$BATCH" -stats-json
		done
	fi
	# RDMA fast path: the 4 KiB randread workload on rdma-ib56 with batched
	# doorbells, sweeping regcache on/off x merge on/off at QD 16 and 64.
	# The all-on runs add dynamic doorbell coalescing, so the report shows
	# each mechanism's tail contribution (p99.9/p99.99 vs the legacy model)
	# at both depths.
	if [ -n "$RDMA" ]; then
		for rqd in 16 64; do
			for fp in "" "-rdma-regcache" "-rdma-merge" "-rdma-regcache -rdma-merge -rdma-dyndb"; do
				printf ',\n'
				# shellcheck disable=SC2086
				"$BIN" -fabric rdma-ib56 -rw randread -size 4K -qd "$rqd" \
					-t "$DUR" -batch 8 $fp -stats-json
			done
		done
	fi
	# Online self-tuning: the 4 KiB randread workload on tcp-25g started
	# from the worst static configuration (batch 1), once left static,
	# once with the live tuner attached (same bad start), and once at the
	# hand-swept static best — so the report shows how much of the
	# hand-tuned gap the tuner closes without a reconnect. The last run
	# flips to 128K sequential mid-window and records the phase reset.
	if [ -n "$TUNE" ]; then
		printf ',\n'
		"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$QD" -t "$TUNE_DUR" \
			-batch 1 -drv-batch 32 -stats-json
		printf ',\n'
		"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$QD" -t "$TUNE_DUR" \
			-batch 1 -drv-batch 32 -tune -stats-json
		printf ',\n'
		"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$QD" -t "$TUNE_DUR" \
			-batch 16 -drv-batch 32 -stats-json
		printf ',\n'
		"$BIN" -fabric tcp-25g -rw randread -size 4K -qd "$QD" -t "$TUNE_DUR" \
			-batch 1 -drv-batch 32 -tune \
			-flip-at 1s -flip-rw read -flip-size 128K -stats-json
	fi
	# Per-tenant QoS: a polite latency-sensitive tenant sharing the
	# tcp-25g fabric with a greedy throughput tenant (streams assigned
	# round-robin), swept from no tenancy at all, through attribution
	# only (tenants named, nobody shaped), to the greedy tenant capped —
	# so the report records the polite tenant's p99 and the token
	# borrow/lend ledger at each step, with and without SLO steering.
	if [ -n "$TENANTS" ]; then
		printf ',\n'
		"$BIN" -fabric tcp-25g -rw randread -size 8K -qd 32 -streams 4 \
			-t "$DUR" -stats-json
		for slo in "none,none" "latency,throughput"; do
			printf ',\n'
			"$BIN" -fabric tcp-25g -rw randread -size 8K -qd 32 -streams 4 \
				-t "$DUR" -tenants polite,greedy -slo "$slo" -stats-json
			printf ',\n'
			"$BIN" -fabric tcp-25g -rw randread -size 8K -qd 32 -streams 4 \
				-t "$DUR" -tenants polite,greedy -slo "$slo" -rate 0,300 -stats-json
		done
	fi
	printf '  ]'
	if [ -n "$GOBENCH" ]; then
		printf ',\n  "go_bench": [\n'
		go_bench
		printf '  ]\n'
	else
		printf '\n'
	fi
	printf '}\n'
} >"$OUT"

echo "bench: wrote $OUT"
