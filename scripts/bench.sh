#!/bin/sh
# Observability benchmark sweep: run a small fabric matrix through
# oafperf -stats-json and collect one JSON report with perf numbers,
# fabric telemetry (counters, quantiles, traces), and pool stats.
#
# Environment knobs (all optional):
#   BENCH_OUT      output file            (default BENCH_pr2.json)
#   BENCH_DURATION measured window        (default 500ms; CI smoke: 50ms)
#   BENCH_QD       queue depth            (default 64)
#   BENCH_SIZE     I/O size               (default 128K)
#   BENCH_FABRICS  fabrics to sweep       (default "nvme-oaf tcp-25g")
set -e
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_pr2.json}
DUR=${BENCH_DURATION:-500ms}
QD=${BENCH_QD:-64}
SIZE=${BENCH_SIZE:-128K}
FABRICS=${BENCH_FABRICS:-"nvme-oaf tcp-25g"}

BIN=$(mktemp -d)/oafperf
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/oafperf

{
	printf '{\n'
	printf '  "bench": "observability-sweep",\n'
	printf '  "duration": "%s",\n' "$DUR"
	printf '  "runs": [\n'
	first=1
	for fab in $FABRICS; do
		for rw in read write; do
			[ $first -eq 1 ] || printf ',\n'
			first=0
			"$BIN" -fabric "$fab" -rw "$rw" -size "$SIZE" -qd "$QD" -t "$DUR" -stats-json
		done
	done
	printf '  ]\n'
	printf '}\n'
} >"$OUT"

echo "bench: wrote $OUT"
