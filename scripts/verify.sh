#!/bin/sh
# Fast correctness gate for CI and pre-commit:
#   1. go vet      — static checks
#   2. go build    — everything compiles
#   3. go test -race — full suite under the race detector (the sim engine
#      runs procs one at a time, but real goroutines, channels, and the
#      shared-memory atomics still get exercised)
#
# Any arguments are passed through to `go test`; `scripts/verify.sh -short`
# skips the slow figure/experiment sweeps (used on PRs, where a separate
# full run still covers them on main).
set -e
cd "$(dirname "$0")/.."

echo "== vet =="
go vet ./...

echo "== build =="
go build ./...

echo "== test (race) =="
go test -race "$@" ./...

echo "verify: OK"
