#!/bin/sh
# Fast correctness gate for CI and pre-commit:
#   1. go vet      — static checks
#   2. go build    — everything compiles
#   3. dupcheck    — no >40-line cross-file clones in the fabric packages
#      (internal/{core,tcp,rdma,session} must share the session engine,
#      not carry private copies of it); also prints the LoC report
#   4. go test -race — full suite under the race detector (the sim engine
#      runs procs one at a time, but real goroutines, channels, and the
#      shared-memory atomics still get exercised); this includes the
#      replicated-namespace chaos suite (internal/integration
#      TestClusterChaos*) and the replication scaling gate
#      (internal/exp TestClusterReadScalingAtFourTargets)
#
# Any arguments are passed through to `go test`; `scripts/verify.sh -short`
# skips the slow figure/experiment sweeps (used on PRs, where a separate
# full run still covers them on main).
set -e
cd "$(dirname "$0")/.."

echo "== vet =="
go vet ./...

echo "== build =="
go build ./...

echo "== dupcheck =="
go run ./cmd/dupcheck

echo "== test (race) =="
go test -race "$@" ./...

echo "verify: OK"
